// Package dht implements the paper's distributed seed index (§II-B, §III):
// a hash table partitioned over all UPC threads, mapping each seed to the
// list of (fragment, offset) locations it was extracted from.
//
// Construction supports both modes measured in Fig 8:
//
//   - FineGrained: the straightforward algorithm — every seed incurs a
//     remote lock (global atomic) plus a small remote store into the owner's
//     bucket. Fine-grained communication and fine-grained locking.
//
//   - Aggregating: the paper's "aggregating stores" optimization — each
//     thread keeps an S-entry staging buffer per destination thread; a full
//     buffer is shipped with ONE remote aggregate transfer into the
//     destination's local-shared stack, whose write cursor is reserved with a
//     single atomic_fetchadd. After a barrier every owner drains its own
//     stack into its local buckets with zero communication and zero locks,
//     which is what makes the resulting table lock-free. Memory grows by
//     S x (n-1) staged entries per thread; messages and atomics shrink by S.
//
// The table also counts seed occurrences during the drain — the "cheap and
// local operation" of §IV-A — and derives the single_copy_seeds flag per
// target fragment that powers the exact-match optimization.
package dht

import (
	"fmt"
	"sort"
	"sync"

	"github.com/lbl-repro/meraligner/internal/kmer"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// BuildMode selects the construction algorithm.
type BuildMode int

const (
	// Aggregating is the optimized mode (aggregating stores, lock-free).
	Aggregating BuildMode = iota
	// FineGrained is the unoptimized baseline of Fig 8.
	FineGrained
)

func (m BuildMode) String() string {
	if m == Aggregating {
		return "aggregating"
	}
	return "fine-grained"
}

// Loc is one occurrence of a seed: the fragment it was extracted from, the
// offset of the seed's first base within that fragment, and whether the
// fragment carries the reverse complement of the canonical seed (indexes
// store canonical seeds so queries match either strand).
type Loc struct {
	Frag int32
	Off  int32
	RC   bool
}

// SeedEntry is the wire format of one staged seed: the seed plus its
// location. WireBytes(k) gives its size for the cost model.
type SeedEntry struct {
	Seed kmer.Kmer
	Loc  Loc
}

// WireBytes returns the on-the-wire size of a SeedEntry for seeds of
// length k: the 2-bit packed seed, two 32-bit integers and a strand byte.
func WireBytes(k int) int { return kmer.PackedBytes(k) + 9 }

// entry is the stored value for one distinct seed.
type entry struct {
	locs  []Loc
	count int32 // total occurrences, == len(locs) unless list was capped
}

// buckets is one partition's seed table: a map from seed to a dense entry
// slice. It is shared between the simulated Index (one per UPC thread) and
// the concurrent Sharded index (one per shard); both drain into it from a
// single goroutine, so insert needs no locking of its own.
type buckets struct {
	m map[kmer.Kmer]int32
	e []entry
}

// insert adds one occurrence, capping the stored location list at maxLoc
// entries (0 = unlimited) while still counting every occurrence.
func (bt *buckets) insert(e SeedEntry, maxLoc int) {
	if idx, ok := bt.m[e.Seed]; ok {
		ent := &bt.e[idx]
		ent.count++
		if maxLoc == 0 || len(ent.locs) < maxLoc {
			ent.locs = append(ent.locs, e.Loc)
		}
		return
	}
	bt.m[e.Seed] = int32(len(bt.e))
	bt.e = append(bt.e, entry{locs: []Loc{e.Loc}, count: 1})
}

// lookup probes the partition.
func (bt *buckets) lookup(s kmer.Kmer) (LookupResult, bool) {
	idx, ok := bt.m[s]
	if !ok {
		return LookupResult{}, false
	}
	ent := &bt.e[idx]
	return LookupResult{Locs: ent.locs, Count: ent.count}, true
}

// sortEntries orders staged entries by (seed, fragment, offset, strand) so a
// partition's contents are independent of ship interleaving. Both build
// paths sort with this comparator, which is what makes the simulated and
// threaded indexes byte-identical for the same input.
func sortEntries(es []SeedEntry) {
	sort.Slice(es, func(i, j int) bool {
		a, b := es[i], es[j]
		if a.Seed != b.Seed {
			return a.Seed.Less(b.Seed)
		}
		if a.Loc.Frag != b.Loc.Frag {
			return a.Loc.Frag < b.Loc.Frag
		}
		if a.Loc.Off != b.Loc.Off {
			return a.Loc.Off < b.Loc.Off
		}
		return !a.Loc.RC && b.Loc.RC
	})
}

// ownerTable is the local part of the distributed table on one thread.
type ownerTable struct {
	mu sync.Mutex // contended only in FineGrained mode
	buckets
}

// stack is one thread's pre-allocated local-shared stack: remote threads
// append aggregate batches; the owner drains it after the barrier.
type stack struct {
	mu      sync.Mutex
	entries []SeedEntry
}

// Config parameterizes index construction.
type Config struct {
	K          int       // seed length
	Mode       BuildMode // Aggregating or FineGrained
	S          int       // aggregation buffer size (entries); paper uses 1000
	MaxLocList int       // cap on stored locations per seed; 0 = unlimited
}

// Index is the distributed seed index.
type Index struct {
	cfg  Config
	mach upc.MachineConfig

	owners []ownerTable
	stacks []stack

	// singleCopy[frag] is 1 while every seed of the fragment is uniquely
	// located in it (Lemma 1's precondition); cleared during MarkSingleCopy.
	singleCopy   []int32
	numFragments int
}

// New creates an index distributed over the machine's threads, indexing
// fragments 0..numFragments-1.
func New(mach upc.MachineConfig, cfg Config, numFragments int) (*Index, error) {
	if cfg.K <= 0 || cfg.K > kmer.MaxK {
		return nil, fmt.Errorf("dht: seed length %d out of range", cfg.K)
	}
	if cfg.S <= 0 {
		cfg.S = 1000 // the paper's setting
	}
	ix := &Index{
		cfg:          cfg,
		mach:         mach,
		owners:       make([]ownerTable, mach.Threads),
		stacks:       make([]stack, mach.Threads),
		singleCopy:   make([]int32, numFragments),
		numFragments: numFragments,
	}
	for i := range ix.owners {
		ix.owners[i].buckets.m = make(map[kmer.Kmer]int32)
	}
	for i := range ix.singleCopy {
		ix.singleCopy[i] = 1
	}
	return ix, nil
}

// K returns the seed length the index was built with.
func (ix *Index) K() int { return ix.cfg.K }

// Mode returns the construction mode.
func (ix *Index) Mode() BuildMode { return ix.cfg.Mode }

// OwnerOf returns the thread owning a seed: djb2(seed) mod THREADS, the
// paper's seed-to-processor map.
func (ix *Index) OwnerOf(s kmer.Kmer) int {
	return int(s.Hash() % uint64(ix.mach.Threads))
}

// Builder stages seed insertions for one thread during construction.
type Builder struct {
	ix   *Index
	t    *upc.Thread
	bufs [][]SeedEntry // per destination, Aggregating mode only

	// Flushes counts aggregate transfers issued (for tests and stats).
	Flushes int64
}

// NewBuilder returns a Builder bound to simulated thread t.
func (ix *Index) NewBuilder(t *upc.Thread) *Builder {
	b := &Builder{ix: ix, t: t}
	if ix.cfg.Mode == Aggregating {
		b.bufs = make([][]SeedEntry, ix.mach.Threads)
	}
	return b
}

// Add inserts one seed occurrence. In Aggregating mode it is staged into
// the per-destination buffer and shipped when S entries accumulate; in
// FineGrained mode it is sent immediately with a lock + small message.
func (b *Builder) Add(e SeedEntry) {
	ix, t := b.ix, b.t
	t.Compute(ix.mach.HashCost)
	dst := ix.OwnerOf(e.Seed)

	if ix.cfg.Mode == FineGrained {
		// Straightforward algorithm: remote lock, remote store, remote
		// unlock (unlock charged as part of the atomic pair), plus the
		// insertion executed under the owner's bucket lock.
		t.Atomic(dst)
		t.Put(dst, WireBytes(ix.cfg.K))
		ot := &ix.owners[dst]
		ot.mu.Lock()
		ix.insertLocked(ot, e)
		ot.mu.Unlock()
		// The insert work is done by the initiating thread via RDMA+lock
		// in the unoptimized scheme; charge it the insert cost too.
		t.Compute(ix.mach.InsertCost)
		return
	}

	t.Compute(ix.mach.BufferCopyCost)
	buf := append(b.bufs[dst], e)
	if len(buf) >= ix.cfg.S {
		b.ship(dst, buf)
		buf = buf[:0]
	}
	b.bufs[dst] = buf
}

// ship performs one remote aggregate transfer of staged entries into dst's
// local-shared stack: an atomic_fetchadd reserving the range, then a single
// aggregate put.
func (b *Builder) ship(dst int, batch []SeedEntry) {
	if len(batch) == 0 {
		return
	}
	ix, t := b.ix, b.t
	t.Atomic(dst) // reserve cur_pos .. cur_pos+S-1 on the stack_ptr
	t.Put(dst, len(batch)*WireBytes(ix.cfg.K))
	st := &ix.stacks[dst]
	st.mu.Lock()
	st.entries = append(st.entries, batch...)
	st.mu.Unlock()
	b.Flushes++
}

// Flush ships every non-empty staging buffer; call before the barrier that
// precedes draining.
func (b *Builder) Flush() {
	if b.ix.cfg.Mode != Aggregating {
		return
	}
	for dst, buf := range b.bufs {
		if len(buf) > 0 {
			b.ship(dst, buf)
			b.bufs[dst] = buf[:0]
		}
	}
}

// insertLocked adds one occurrence into an owner table. Caller holds ot.mu
// or is the exclusive owner.
func (ix *Index) insertLocked(ot *ownerTable, e SeedEntry) {
	ot.buckets.insert(e, ix.cfg.MaxLocList)
}

// Drain empties thread t's local-shared stack into its local buckets —
// purely local, lock-free work (§III-A). Entries are sorted first so the
// table contents are independent of flush interleaving; the sort is a
// simulation-reproducibility aid and is not charged to the cost model.
func (ix *Index) Drain(t *upc.Thread) {
	if ix.cfg.Mode != Aggregating {
		return
	}
	st := &ix.stacks[t.ID]
	es := st.entries
	sortEntries(es)
	ot := &ix.owners[t.ID]
	for _, e := range es {
		ix.insertLocked(ot, e)
		t.Compute(ix.mach.InsertCost)
	}
	st.entries = nil
}

// MarkSingleCopy implements §IV-A: thread t visits its local seeds; every
// seed occurring more than once anywhere clears the single_copy_seeds flag
// of each fragment it appears in. Flag writes to fragments owned by other
// threads are one-sided remote puts of one byte.
func (ix *Index) MarkSingleCopy(t *upc.Thread) {
	ot := &ix.owners[t.ID]
	for i := range ot.e {
		ent := &ot.e[i]
		t.Compute(ix.mach.LookupCost) // visiting the local bucket
		if ent.count <= 1 {
			continue
		}
		for _, loc := range ent.locs {
			fragOwner := int(loc.Frag) % ix.mach.Threads
			t.Put(fragOwner, 1)
			ix.clearSingleCopy(int(loc.Frag))
		}
	}
}

var clearMu sync.Mutex

func (ix *Index) clearSingleCopy(frag int) {
	// Plain store under a global mutex: writes are idempotent (always 0),
	// the mutex only pacifies the race detector.
	clearMu.Lock()
	ix.singleCopy[frag] = 0
	clearMu.Unlock()
}

// SingleCopy reports whether every seed of fragment frag is uniquely located
// in it. Valid after MarkSingleCopy has run on all threads.
func (ix *Index) SingleCopy(frag int) bool { return ix.singleCopy[frag] != 0 }

// SingleCopyCount returns how many fragments kept the flag.
func (ix *Index) SingleCopyCount() int {
	n := 0
	for _, f := range ix.singleCopy {
		if f != 0 {
			n++
		}
	}
	return n
}

// LookupResult is the outcome of a seed lookup.
type LookupResult struct {
	Locs  []Loc // shared slice; callers must not modify
	Count int32 // total occurrences (>= len(Locs) when the list was capped)
}

// lookupLocal probes the owner's table without charging communication.
func (ix *Index) lookupLocal(owner int, s kmer.Kmer) (LookupResult, bool) {
	return ix.owners[owner].buckets.lookup(s)
}

// Lookup performs a seed lookup from thread t, charging one local probe at
// the owner plus the transfer of the result back to t (self and on-node
// lookups are cheap; off-node ones pay remote latency). The seed-index
// software cache, when used, wraps this method — see package cache.
func (ix *Index) Lookup(t *upc.Thread, s kmer.Kmer) (LookupResult, bool) {
	t.Counters.SeedLookups++
	t.Compute(ix.mach.LookupCost)
	owner := ix.OwnerOf(s)
	res, ok := ix.lookupLocal(owner, s)
	bytes := WireBytes(ix.cfg.K)
	if ok {
		bytes += len(res.Locs) * 9
	}
	t.Get(owner, bytes)
	return res, ok
}

// LookupBytes returns the wire size of a lookup response with n locations;
// exposed for the seed cache's cost accounting.
func (ix *Index) LookupBytes(n int) int { return WireBytes(ix.cfg.K) + n*9 }

// LookupNoCharge probes the table without touching the cost model — used
// by oracles in tests and by the cache layer after it has charged costs.
func (ix *Index) LookupNoCharge(s kmer.Kmer) (LookupResult, bool) {
	return ix.lookupLocal(ix.OwnerOf(s), s)
}

// Stats summarizes the constructed index.
type Stats struct {
	DistinctSeeds   int
	TotalLocs       int
	MaxListLen      int
	MaxOwnerSeeds   int
	MinOwnerSeeds   int
	RepeatSeeds     int // distinct seeds with count > 1
	SingleCopyFrags int
	Fragments       int
}

// Stats scans the whole table (host-side, not charged to the cost model).
func (ix *Index) Stats() Stats {
	st := Stats{MinOwnerSeeds: -1, SingleCopyFrags: ix.SingleCopyCount(), Fragments: ix.numFragments}
	for i := range ix.owners {
		ot := &ix.owners[i]
		n := len(ot.e)
		st.DistinctSeeds += n
		if n > st.MaxOwnerSeeds {
			st.MaxOwnerSeeds = n
		}
		if st.MinOwnerSeeds < 0 || n < st.MinOwnerSeeds {
			st.MinOwnerSeeds = n
		}
		for j := range ot.e {
			st.TotalLocs += len(ot.e[j].locs)
			if len(ot.e[j].locs) > st.MaxListLen {
				st.MaxListLen = len(ot.e[j].locs)
			}
			if ot.e[j].count > 1 {
				st.RepeatSeeds++
			}
		}
	}
	if st.MinOwnerSeeds < 0 {
		st.MinOwnerSeeds = 0
	}
	return st
}

// PendingStackEntries reports staged-but-undrained entries; must be zero
// after all threads Drain. Exposed for tests.
func (ix *Index) PendingStackEntries() int {
	n := 0
	for i := range ix.stacks {
		n += len(ix.stacks[i].entries)
	}
	return n
}
