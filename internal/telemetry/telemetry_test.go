package telemetry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// ---- span context / traceparent ----

func TestTraceparentRoundTrip(t *testing.T) {
	sc := NewSpanContext()
	if !sc.Valid() {
		t.Fatal("fresh span context invalid")
	}
	tp := sc.Traceparent()
	if !strings.HasPrefix(tp, "00-") || !strings.HasSuffix(tp, "-01") {
		t.Fatalf("traceparent shape: %q", tp)
	}
	got, ok := ParseTraceparent(tp)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) failed", tp)
	}
	if got.TraceID != sc.TraceID || got.SpanID != sc.SpanID {
		t.Fatalf("round trip mismatch: %v vs %v", got, sc)
	}
	if len(sc.RequestID()) != 32 {
		t.Fatalf("request id %q not 32 hex", sc.RequestID())
	}
}

func TestParseTraceparentRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"",
		"00-short-deadbeefdeadbeef-01",
		"00-zzzzzzzzzzzzzzzzzzzzzzzzzzzzzzzz-deadbeefdeadbeef-01",
		"00-00000000000000000000000000000000-deadbeefdeadbeef-01", // all-zero trace id
		"not a traceparent",
	} {
		if _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

func TestExtractPrecedence(t *testing.T) {
	sc := NewSpanContext()

	h := http.Header{}
	h.Set("traceparent", sc.Traceparent())
	got, supplied := Extract(h)
	if !supplied || got.TraceID != sc.TraceID {
		t.Fatalf("traceparent not honored: %v supplied=%v", got, supplied)
	}
	if got.SpanID == sc.SpanID {
		t.Fatal("Extract must mint a fresh local span id")
	}

	h = http.Header{}
	h.Set(HeaderRequestID, sc.RequestID())
	got, supplied = Extract(h)
	if !supplied || got.TraceID != sc.TraceID {
		t.Fatalf("X-Request-Id fallback not honored: %v supplied=%v", got, supplied)
	}

	got, supplied = Extract(http.Header{})
	if supplied || !got.Valid() {
		t.Fatalf("bare request should mint a fresh context: %v supplied=%v", got, supplied)
	}
}

func TestInjectPrecedence(t *testing.T) {
	tr := NewTrace(NewSpanContext(), "/v1/align")
	ctx := WithTrace(context.Background(), tr)

	h := http.Header{}
	Inject(ctx, h)
	if h.Get(HeaderRequestID) != tr.RequestID() {
		t.Fatalf("ambient trace not injected: %q", h.Get(HeaderRequestID))
	}

	carrier := NewSpanContext()
	h = http.Header{}
	Inject(WithSpanContext(ctx, carrier), h)
	if h.Get(HeaderRequestID) != carrier.RequestID() {
		t.Fatal("explicit span context must override the ambient trace")
	}

	h = http.Header{}
	Inject(context.Background(), h)
	if len(h) != 0 {
		t.Fatalf("traceless context wrote headers: %v", h)
	}
}

// ---- trace recording ----

func TestTraceSpansAndFinish(t *testing.T) {
	tr := NewTrace(NewSpanContext(), "/v1/align")
	tr.SetRef("alpha")
	tr.AddReads(7)
	tr.Add("admission", tr.Start(), 250*time.Microsecond, func(s *Span) { s.Reads = 7 })
	tr.Add("rpc", tr.Start().Add(time.Millisecond), 2*time.Millisecond, func(s *Span) {
		s.Shard, s.Retries, s.Status = "2", 1, "ok"
	})
	rt := tr.Finish(200)
	if rt.RequestID != tr.RequestID() || rt.Path != "/v1/align" || rt.Ref != "alpha" || rt.Reads != 7 || rt.Status != 200 {
		t.Fatalf("finish lost fields: %+v", rt)
	}
	if len(rt.Spans) != 2 {
		t.Fatalf("want 2 spans, got %d", len(rt.Spans))
	}
	if rt.Spans[1].StartUs < 1000 || rt.Spans[1].DurationUs != 2000 || rt.Spans[1].Shard != "2" || rt.Spans[1].Retries != 1 {
		t.Fatalf("rpc span mangled: %+v", rt.Spans[1])
	}
	sum := rt.SpanSummary()
	if !strings.Contains(sum, "admission=") || !strings.Contains(sum, "rpc[shard=2]=") || !strings.Contains(sum, "(retries=1)") {
		t.Fatalf("span summary: %q", sum)
	}
}

func TestTraceSpanCap(t *testing.T) {
	tr := NewTrace(NewSpanContext(), "/v1/align")
	for i := 0; i < maxSpans+10; i++ {
		tr.Add("chunk", tr.Start(), time.Microsecond, nil)
	}
	rt := tr.Finish(200)
	if len(rt.Spans) != maxSpans || rt.DroppedSpans != 10 {
		t.Fatalf("cap broken: %d spans, %d dropped", len(rt.Spans), rt.DroppedSpans)
	}
}

// ---- ring ----

func TestRingEvictionAndOrder(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 7; i++ {
		r.Add(RequestTrace{RequestID: fmt.Sprintf("req-%d", i)})
	}
	snap := r.Snapshot()
	if len(snap) != 4 {
		t.Fatalf("want 4 retained, got %d", len(snap))
	}
	for i, want := range []string{"req-6", "req-5", "req-4", "req-3"} {
		if snap[i].RequestID != want {
			t.Fatalf("snapshot[%d] = %s, want %s (newest first)", i, snap[i].RequestID, want)
		}
	}
}

func TestRingServeHTTP(t *testing.T) {
	r := NewRing(8)
	r.Add(RequestTrace{RequestID: "abc", Status: 200, Spans: []Span{{Stage: "engine"}}})
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/requests", nil))
	var body struct {
		Total    int64          `json:"total"`
		Requests []RequestTrace `json:"requests"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &body); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, rec.Body.String())
	}
	if body.Total != 1 || len(body.Requests) != 1 || body.Requests[0].Spans[0].Stage != "engine" {
		t.Fatalf("body: %+v", body)
	}
}

// ---- histogram ----

func TestHistQuantiles(t *testing.T) {
	var h Hist
	for i := 1; i <= 1000; i++ {
		h.Observe(int64(i) * 1000) // 1µs .. 1ms
	}
	p50 := h.Quantile(0.50)
	p99 := h.Quantile(0.99)
	if p50 <= 0 || p99 < p50 {
		t.Fatalf("quantiles disordered: p50=%g p99=%g", p50, p99)
	}
	// log2 buckets: p50 must land within a factor-of-2 of the true median.
	if p50 < 250e3 || p50 > 1.5e6 {
		t.Fatalf("p50=%gns implausible for a 1µs..1ms uniform ramp", p50)
	}
}

func TestHistPrometheusSeries(t *testing.T) {
	var h Hist
	h.Observe(2048)    // 2^11: above le=2.048e-06 (2^11 ns), inside le=4.096e-06
	h.Observe(1 << 20) // ~1ms
	h.Observe(1 << 20)

	var b bytes.Buffer
	WriteHistHeader(&b, "x_duration_seconds", "test")
	h.Snapshot().WriteSeries(&b, "x_duration_seconds", `ref="alpha"`)
	out := b.String()

	if !strings.Contains(out, "# TYPE x_duration_seconds histogram\n") {
		t.Fatalf("missing TYPE line:\n%s", out)
	}
	for _, want := range []string{
		`x_duration_seconds_bucket{ref="alpha",le="1.024e-06"} 0`,
		`x_duration_seconds_bucket{ref="alpha",le="4.096e-06"} 1`,
		`x_duration_seconds_bucket{ref="alpha",le="+Inf"} 3`,
		`x_duration_seconds_count{ref="alpha"} 3`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Cumulative counts must be monotone.
	last := int64(-1)
	for _, line := range strings.Split(out, "\n") {
		if !strings.HasPrefix(line, "x_duration_seconds_bucket") {
			continue
		}
		var n int64
		if _, err := fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &n); err != nil {
			t.Fatalf("bad bucket line %q: %v", line, err)
		}
		if n < last {
			t.Fatalf("non-monotone buckets at %q", line)
		}
		last = n
	}
	// _sum is in seconds.
	wantSum := float64(2048+2*(1<<20)) / 1e9
	var gotSum float64
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, `x_duration_seconds_sum{ref="alpha"}`) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%g", &gotSum)
		}
	}
	if gotSum < wantSum*0.999 || gotSum > wantSum*1.001 {
		t.Fatalf("sum=%g want %g", gotSum, wantSum)
	}

	// Unlabeled series render without braces on _sum/_count.
	b.Reset()
	h.Snapshot().WriteSeries(&b, "y", "")
	if !strings.Contains(b.String(), "y_bucket{le=\"+Inf\"} 3\n") || !strings.Contains(b.String(), "y_count 3\n") {
		t.Fatalf("unlabeled series:\n%s", b.String())
	}
}

// ---- runtime metrics ----

func TestWriteRuntimeMetrics(t *testing.T) {
	var b bytes.Buffer
	WriteRuntimeMetrics(&b, "merserved")
	out := b.String()
	for _, want := range []string{
		"merserved_go_goroutines ",
		"merserved_go_heap_alloc_bytes ",
		"merserved_go_gc_pause_seconds_total ",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

// ---- logging ----

func TestPlainHandlerShape(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "merserved: ", "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("listening on 127.0.0.1:9000")
	l.Warn("slow request", "request_id", "abc", "spans", "engine=1.0ms")
	l.Debug("request", "status", 200)
	l.With("ref", "alpha").Info("swapped")
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	want := []string{
		"merserved: listening on 127.0.0.1:9000",
		`merserved: warn: slow request request_id=abc spans="engine=1.0ms"`,
		"merserved: debug: request status=200",
		"merserved: swapped ref=alpha",
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d:\n got %q\nwant %q", i, lines[i], want[i])
		}
	}
}

func TestLoggerLevelGate(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "x: ", "text", "warn")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("hidden")
	l.Warn("shown")
	if strings.Contains(b.String(), "hidden") || !strings.Contains(b.String(), "shown") {
		t.Fatalf("level gate broken: %q", b.String())
	}
	if _, err := NewLogger(&b, "x: ", "text", "loud"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&b, "x: ", "xml", "info"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestJSONLogger(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "merrouted: ", "json", "info")
	if err != nil {
		t.Fatal(err)
	}
	l.Info("request", "request_id", "abc123", "status", 200)
	var rec map[string]any
	if err := json.Unmarshal(b.Bytes(), &rec); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, b.String())
	}
	if rec["msg"] != "request" || rec["request_id"] != "abc123" || rec["logger"] != "merrouted" {
		t.Fatalf("record: %v", rec)
	}
}

func TestCaptureStdLog(t *testing.T) {
	var b bytes.Buffer
	l, err := NewLogger(&b, "mergen: ", "text", "info")
	if err != nil {
		t.Fatal(err)
	}
	defer log.SetOutput(io.Discard)
	CaptureStdLog(l)
	log.Printf("wrote %d reads", 42)
	if got := b.String(); got != "mergen: wrote 42 reads\n" {
		t.Fatalf("bridge output: %q", got)
	}
}
