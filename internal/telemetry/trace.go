package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"
)

// HeaderRequestID is the response (and accepted request) header carrying
// the request ID — the hex trace ID of the request's span context.
const HeaderRequestID = "X-Request-Id"

// headerTraceparent is the W3C trace-context header: 00-<32 hex trace
// id>-<16 hex parent span id>-<2 hex flags>.
const headerTraceparent = "traceparent"

// SpanContext identifies one request across process boundaries: a 128-bit
// trace ID shared by every tier the request touches and a 64-bit span ID
// naming the local hop.
type SpanContext struct {
	TraceID [16]byte
	SpanID  [8]byte
}

// NewSpanContext returns a span context with fresh random IDs.
func NewSpanContext() SpanContext {
	var sc SpanContext
	var b [24]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand is documented never to fail on supported
		// platforms; fall back to a timestamp so IDs stay non-zero.
		ns := time.Now().UnixNano()
		for i := 0; i < 8; i++ {
			b[i] = byte(ns >> (8 * i))
			b[8+i] = byte(ns >> (8 * i))
			b[16+i] = byte(ns >> (8 * i))
		}
	}
	copy(sc.TraceID[:], b[:16])
	copy(sc.SpanID[:], b[16:])
	return sc
}

// Valid reports whether the context carries a non-zero trace ID.
func (sc SpanContext) Valid() bool { return sc.TraceID != [16]byte{} }

// RequestID renders the trace ID as the 32-hex request ID echoed in
// X-Request-Id headers, logs, and error payloads.
func (sc SpanContext) RequestID() string { return hex.EncodeToString(sc.TraceID[:]) }

// Traceparent renders the W3C traceparent header value (version 00,
// sampled flag set).
func (sc SpanContext) Traceparent() string {
	return fmt.Sprintf("00-%s-%s-01", hex.EncodeToString(sc.TraceID[:]), hex.EncodeToString(sc.SpanID[:]))
}

// ChildOf returns a context that keeps sc's trace ID but names a fresh
// local span, for propagating the trace across the next hop.
func (sc SpanContext) ChildOf() SpanContext {
	child := NewSpanContext()
	child.TraceID = sc.TraceID
	return child
}

// ParseTraceparent parses a W3C traceparent header value. It accepts any
// version byte and ignores the flags, returning ok=false on malformed
// input or an all-zero trace ID.
func ParseTraceparent(s string) (SpanContext, bool) {
	var sc SpanContext
	parts := strings.Split(strings.TrimSpace(s), "-")
	if len(parts) < 4 || len(parts[1]) != 32 || len(parts[2]) != 16 {
		return sc, false
	}
	if _, err := hex.Decode(sc.TraceID[:], []byte(parts[1])); err != nil {
		return sc, false
	}
	if _, err := hex.Decode(sc.SpanID[:], []byte(parts[2])); err != nil {
		return sc, false
	}
	return sc, sc.Valid()
}

// Extract returns the span context carried by incoming request headers:
// the traceparent header when present, else an X-Request-Id holding 32
// hex digits (with a fresh local span ID), else a brand-new context. The
// second return reports whether the caller supplied the trace.
func Extract(h http.Header) (SpanContext, bool) {
	if sc, ok := ParseTraceparent(h.Get(headerTraceparent)); ok {
		return sc.ChildOf(), true
	}
	if id := strings.TrimSpace(h.Get(HeaderRequestID)); len(id) == 32 {
		var sc SpanContext
		if _, err := hex.Decode(sc.TraceID[:], []byte(id)); err == nil && sc.Valid() {
			return sc.ChildOf(), true
		}
	}
	return NewSpanContext(), false
}

// Inject writes the context's span context (an explicit WithSpanContext
// value, else the ambient trace's) into outgoing request headers as
// traceparent + X-Request-Id. A context with no trace writes nothing.
func Inject(ctx context.Context, h http.Header) {
	sc, ok := SpanContextFrom(ctx)
	if !ok {
		return
	}
	h.Set(headerTraceparent, sc.Traceparent())
	h.Set(HeaderRequestID, sc.RequestID())
}

type ctxKey int

const (
	traceKey ctxKey = iota
	spanCtxKey
)

// WithTrace attaches an in-flight trace recorder to the context.
func WithTrace(ctx context.Context, tr *Trace) context.Context {
	return context.WithValue(ctx, traceKey, tr)
}

// TraceFrom returns the trace recorder attached by WithTrace, or nil.
func TraceFrom(ctx context.Context) *Trace {
	tr, _ := ctx.Value(traceKey).(*Trace)
	return tr
}

// WithSpanContext attaches a bare span context for outbound propagation,
// overriding any ambient trace. Batchers use this to stamp a coalesced
// carrier trace onto the scatter RPC.
func WithSpanContext(ctx context.Context, sc SpanContext) context.Context {
	return context.WithValue(ctx, spanCtxKey, sc)
}

// SpanContextFrom returns the effective outbound span context: an
// explicit WithSpanContext value first, else the ambient trace's.
func SpanContextFrom(ctx context.Context) (SpanContext, bool) {
	if sc, ok := ctx.Value(spanCtxKey).(SpanContext); ok && sc.Valid() {
		return sc, true
	}
	if tr := TraceFrom(ctx); tr != nil {
		return tr.SpanContext(), true
	}
	return SpanContext{}, false
}

// maxSpans bounds one trace's span list so a pathological stream request
// cannot grow memory without bound; further spans are counted, not kept.
const maxSpans = 64

// Span is one recorded stage of a request: where time went, and on
// whose behalf. Offsets are microseconds relative to the request start.
type Span struct {
	Stage       string `json:"stage"`
	StartUs     int64  `json:"start_us"`
	DurationUs  int64  `json:"duration_us"`
	Shard       string `json:"shard,omitempty"`        // shard ID, RPC spans only
	Replica     string `json:"replica,omitempty"`      // replica index within the shard, RPC spans only
	Addr        string `json:"addr,omitempty"`         // shard address, RPC spans only
	Retries     int    `json:"retries,omitempty"`      // RPC attempts beyond the first
	Hedged      bool   `json:"hedged,omitempty"`       // this RPC was a speculative hedge launch
	Requests    int    `json:"requests,omitempty"`     // member requests in a coalesced call
	Reads       int    `json:"reads,omitempty"`        // reads carried by this stage
	SWCalls     int64  `json:"sw_calls,omitempty"`     // Smith-Waterman invocations (engine spans)
	SeedLookups int64  `json:"seed_lookups,omitempty"` // seed-table probes (engine spans)
	Link        string `json:"link,omitempty"`         // downstream trace ID propagated on this hop
	Status      string `json:"status,omitempty"`
	Error       string `json:"error,omitempty"`
}

// RequestTrace is the completed-request record kept in the debug ring
// and logged for slow requests.
type RequestTrace struct {
	RequestID    string    `json:"request_id"`
	Traceparent  string    `json:"traceparent"`
	Path         string    `json:"path"`
	Ref          string    `json:"ref,omitempty"`
	Start        time.Time `json:"start"`
	DurationUs   int64     `json:"duration_us"`
	Status       int       `json:"status"`
	Reads        int       `json:"reads"`
	DroppedSpans int       `json:"dropped_spans,omitempty"`
	Spans        []Span    `json:"spans"`
}

// SpanSummary renders a compact one-line view of the spans for text
// logs: "admission=0.2ms batch_wait=1.1ms rpc[shard=0]=3.4ms ...".
func (rt RequestTrace) SpanSummary() string {
	var b strings.Builder
	for i, s := range rt.Spans {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(s.Stage)
		if s.Shard != "" {
			fmt.Fprintf(&b, "[shard=%s]", s.Shard)
		}
		fmt.Fprintf(&b, "=%.1fms", float64(s.DurationUs)/1e3)
		if s.Retries > 0 {
			fmt.Fprintf(&b, "(retries=%d)", s.Retries)
		}
	}
	return b.String()
}

// Trace accumulates the spans of one in-flight request. It is safe for
// concurrent use: scatter goroutines may add RPC spans while the
// request goroutine records render.
type Trace struct {
	sc    SpanContext
	start time.Time

	mu      sync.Mutex
	path    string
	ref     string
	reads   int
	dropped int
	spans   []Span
}

// NewTrace starts recording a request that arrived now with the given
// span context.
func NewTrace(sc SpanContext, path string) *Trace {
	return &Trace{sc: sc, start: time.Now(), path: path}
}

// SpanContext returns the trace's identity.
func (t *Trace) SpanContext() SpanContext { return t.sc }

// RequestID returns the hex trace ID.
func (t *Trace) RequestID() string { return t.sc.RequestID() }

// Start returns when the request began.
func (t *Trace) Start() time.Time { return t.start }

// SetRef records which reference the request targeted.
func (t *Trace) SetRef(ref string) {
	t.mu.Lock()
	t.ref = ref
	t.mu.Unlock()
}

// AddReads accumulates the request's accepted read count.
func (t *Trace) AddReads(n int) {
	t.mu.Lock()
	t.reads += n
	t.mu.Unlock()
}

// Add records one span. start/d are absolute; they are stored as offsets
// from the request start. fill, when non-nil, decorates the span with
// stage-specific fields before it is stored. Spans beyond the cap are
// counted as dropped instead of stored.
func (t *Trace) Add(stage string, start time.Time, d time.Duration, fill func(*Span)) {
	s := Span{
		Stage:      stage,
		StartUs:    max64(start.Sub(t.start).Microseconds(), 0),
		DurationUs: max64(d.Microseconds(), 0),
	}
	if fill != nil {
		fill(&s)
	}
	t.mu.Lock()
	if len(t.spans) >= maxSpans {
		t.dropped++
	} else {
		t.spans = append(t.spans, s)
	}
	t.mu.Unlock()
}

// Finish seals the trace into a RequestTrace with the given HTTP status
// and the wall time elapsed since the request began.
func (t *Trace) Finish(status int) RequestTrace {
	t.mu.Lock()
	defer t.mu.Unlock()
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	return RequestTrace{
		RequestID:    t.sc.RequestID(),
		Traceparent:  t.sc.Traceparent(),
		Path:         t.path,
		Ref:          t.ref,
		Start:        t.start,
		DurationUs:   max64(time.Since(t.start).Microseconds(), 0),
		Status:       status,
		Reads:        t.reads,
		DroppedSpans: t.dropped,
		Spans:        spans,
	}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
