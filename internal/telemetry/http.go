package telemetry

import "net/http"

// StatusRecorder wraps a ResponseWriter to capture the response status
// for trace and log records. It forwards Flush so streaming handlers
// keep working; handlers that never call WriteHeader report the zero
// value the wrapper was constructed with (conventionally 200).
type StatusRecorder struct {
	http.ResponseWriter
	Code  int
	wrote bool
}

// WriteHeader records the first explicit status and forwards it.
func (sr *StatusRecorder) WriteHeader(code int) {
	if !sr.wrote {
		sr.Code = code
		sr.wrote = true
	}
	sr.ResponseWriter.WriteHeader(code)
}

// Write marks the status as committed and forwards the bytes.
func (sr *StatusRecorder) Write(p []byte) (int, error) {
	sr.wrote = true
	return sr.ResponseWriter.Write(p)
}

// Flush forwards to the underlying Flusher when present (chunked
// streaming responses rely on it).
func (sr *StatusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
