package telemetry

import (
	"encoding/json"
	"net/http"
	"sync"
)

// Ring is a bounded ring of recently completed request traces, served as
// JSON at /debug/requests. Writes overwrite the oldest entry; readers
// get a newest-first snapshot.
type Ring struct {
	mu   sync.Mutex
	buf  []RequestTrace
	next int   // index of the slot the next Add writes
	full bool  // buf has wrapped at least once
	seen int64 // total traces ever added
}

// DefaultRingCapacity is used when a Ring is constructed with a
// non-positive capacity.
const DefaultRingCapacity = 128

// NewRing returns a ring holding up to capacity completed traces.
func NewRing(capacity int) *Ring {
	if capacity <= 0 {
		capacity = DefaultRingCapacity
	}
	return &Ring{buf: make([]RequestTrace, capacity)}
}

// Add records one completed trace, evicting the oldest when full.
func (r *Ring) Add(rt RequestTrace) {
	r.mu.Lock()
	r.buf[r.next] = rt
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.seen++
	r.mu.Unlock()
}

// Snapshot returns the retained traces, newest first.
func (r *Ring) Snapshot() []RequestTrace {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.buf)
	}
	out := make([]RequestTrace, 0, n)
	for i := 1; i <= n; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// ServeHTTP renders the ring as {"total": N, "requests": [...]} with the
// newest trace first.
func (r *Ring) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mu.Lock()
	seen := r.seen
	r.mu.Unlock()
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(struct {
		Total    int64          `json:"total"`
		Requests []RequestTrace `json:"requests"`
	}{seen, r.Snapshot()})
}
