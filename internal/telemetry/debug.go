package telemetry

import (
	"net/http"
	"net/http/pprof"
)

// NewDebugMux builds the private debug handler mounted behind the
// -debug-addr flag: net/http/pprof under /debug/pprof/ and the trace
// ring (when non-nil) at /debug/requests.
//
// The mux exposes profiling endpoints that can stall the process and
// request traces that include client-supplied read names — bind it to
// localhost only; it is not for public exposure.
func NewDebugMux(ring *Ring) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if ring != nil {
		mux.Handle("/debug/requests", ring)
	}
	return mux
}
