// Package telemetry is the shared observability layer: request-scoped
// traces propagated as W3C traceparent headers, a bounded ring of
// completed request traces for /debug/requests, structured logging
// (log/slog) with the -log-level/-log-format flag set, the lock-free
// log2 latency histogram shared by the service and cluster tiers, and
// Go runtime metric exporters for the Prometheus expositions.
//
// Everything here is stdlib-only and safe for concurrent use. The hot
// alignment path never allocates on behalf of this package: traces are
// recorded per request (not per read), and histograms are fixed arrays
// of atomics.
package telemetry

import (
	"fmt"
	"io"
	"math/bits"
	"sync/atomic"
)

// histBuckets is the number of log2 buckets: bucket i counts
// observations in [2^i, 2^(i+1)) nanoseconds, so 63 buckets cover the
// full positive int64 range and no observation is ever dropped.
const histBuckets = 63

// Prometheus histogram series are emitted for le bounds 2^promMinExp ..
// 2^promMaxExp nanoseconds (~1µs .. ~69s) plus +Inf; observations
// outside the band still land in the edge buckets' cumulative counts.
const (
	promMinExp = 10
	promMaxExp = 36
)

// Hist is a lock-free log2-bucketed latency histogram over nanoseconds.
// It is written on hot paths by many goroutines and read whole by stats
// and metrics endpoints, so there are no locks — only atomics; snapshots
// are merely consistent-enough, which is all observability needs.
type Hist struct {
	count   atomic.Int64
	sum     atomic.Int64 // total observed nanoseconds
	buckets [histBuckets]atomic.Int64
}

// Observe records one latency in nanoseconds.
func (h *Hist) Observe(ns int64) {
	if ns < 1 {
		ns = 1
	}
	h.buckets[bits.Len64(uint64(ns))-1].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// Count returns the number of observations so far.
func (h *Hist) Count() int64 { return h.count.Load() }

// Quantile estimates the q-quantile (0 < q <= 1) in nanoseconds as the
// geometric midpoint of the bucket holding the target rank; 0 when
// empty.
func (h *Hist) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	var seen int64
	for i := range h.buckets {
		seen += h.buckets[i].Load()
		if seen >= target {
			return 1.5 * float64(int64(1)<<i)
		}
	}
	return 1.5 * float64(int64(1)<<62)
}

// HistSnapshot is a point-in-time copy of a Hist, used to render one
// Prometheus histogram series.
type HistSnapshot struct {
	Count   int64
	Sum     int64 // nanoseconds
	Buckets [histBuckets]int64
}

// Snapshot copies the histogram's current state.
func (h *Hist) Snapshot() HistSnapshot {
	var s HistSnapshot
	s.Count = h.count.Load()
	s.Sum = h.sum.Load()
	for i := range h.buckets {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// WriteHistHeader emits the # HELP / # TYPE preamble of one Prometheus
// histogram metric family. Call once per family, then WriteSeries for
// each label set.
func WriteHistHeader(w io.Writer, name, help string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", name, help, name)
}

// WriteSeries renders the cumulative _bucket{le="..."}, _sum, and
// _count lines of one series in seconds. labels is either empty or a
// pre-rendered comma-joined pair list such as `ref="alpha"` (no
// braces); the le pair is appended to it.
func (s HistSnapshot) WriteSeries(w io.Writer, name, labels string) {
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	next := 0
	for e := promMinExp; e <= promMaxExp; e++ {
		// Observations < 2^e ns occupy buckets [0, e); le is 2^e ns in
		// seconds.
		for ; next < e && next < histBuckets; next++ {
			cum += s.Buckets[next]
		}
		le := float64(int64(1)<<e) / 1e9
		fmt.Fprintf(w, "%s_bucket{%s%sle=%q} %d\n", name, labels, sep, fmt.Sprintf("%g", le), cum)
	}
	fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Count)
	brace := "{" + labels + "}"
	if labels == "" {
		brace = ""
	}
	fmt.Fprintf(w, "%s_sum%s %g\n", name, brace, float64(s.Sum)/1e9)
	fmt.Fprintf(w, "%s_count%s %d\n", name, brace, s.Count)
}
