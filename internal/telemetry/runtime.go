package telemetry

import (
	"fmt"
	"io"
	"runtime"
)

// WriteRuntimeMetrics appends the Go runtime gauge/counter series to a
// Prometheus exposition under the given metric prefix (for example
// "merserved" emits merserved_go_goroutines and friends). It calls
// runtime.ReadMemStats, which briefly stops the world — fine at scrape
// frequency, never on a request path.
func WriteRuntimeMetrics(w io.Writer, prefix string) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s gauge\n%s_%s %g\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	counter := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s_%s %s\n# TYPE %s_%s counter\n%s_%s %g\n",
			prefix, name, help, prefix, name, prefix, name, v)
	}
	gauge("go_goroutines", "goroutines currently live", float64(runtime.NumGoroutine()))
	gauge("go_heap_alloc_bytes", "heap bytes allocated and still in use", float64(ms.HeapAlloc))
	gauge("go_heap_sys_bytes", "heap bytes obtained from the OS", float64(ms.HeapSys))
	gauge("go_next_gc_bytes", "heap size that triggers the next GC cycle", float64(ms.NextGC))
	counter("go_gc_cycles_total", "completed GC cycles", float64(ms.NumGC))
	counter("go_gc_pause_seconds_total", "cumulative stop-the-world pause time", float64(ms.PauseTotalNs)/1e9)
	counter("go_alloc_bytes_total", "cumulative bytes allocated", float64(ms.TotalAlloc))
}
