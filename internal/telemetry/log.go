package telemetry

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"os"
	"strings"
	"sync"
)

// LogOptions carries the -log-level / -log-format flag values shared by
// every command.
type LogOptions struct {
	// Level is one of debug, info, warn, error.
	Level string
	// Format is text (plain prefixed lines, the historical log.Printf
	// shape) or json (one slog JSON object per line).
	Format string
}

// RegisterLogFlags adds -log-level and -log-format to fs and returns
// the struct their values land in. Call before fs is parsed.
func RegisterLogFlags(fs *flag.FlagSet) *LogOptions {
	o := &LogOptions{Level: "info", Format: "text"}
	fs.StringVar(&o.Level, "log-level", o.Level, "log verbosity: debug, info, warn, or error")
	fs.StringVar(&o.Format, "log-format", o.Format, "log output format: text or json")
	return o
}

// Logger builds a slog.Logger on stderr from the parsed flag values.
// prefix is the program name prepended to text lines ("merserved: ")
// and attached as logger=<name> in JSON mode.
func (o *LogOptions) Logger(prefix string) (*slog.Logger, error) {
	return NewLogger(os.Stderr, prefix, o.Format, o.Level)
}

// ParseLevel maps a flag string to a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug, nil
	case "", "info":
		return slog.LevelInfo, nil
	case "warn", "warning":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	}
	return 0, fmt.Errorf("unknown log level %q (want debug, info, warn, or error)", s)
}

// NewLogger builds a slog.Logger writing to w. format is "text" (plain
// prefixed lines compatible with the historical log.Printf output) or
// "json" (slog's JSON handler with a logger=<name> field). level is
// parsed with ParseLevel.
func NewLogger(w io.Writer, prefix, format, level string) (*slog.Logger, error) {
	lvl, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(strings.TrimSpace(prefix), ":")
	switch strings.ToLower(strings.TrimSpace(format)) {
	case "", "text":
		return slog.New(&plainHandler{w: w, mu: &sync.Mutex{}, prefix: prefix, level: lvl}), nil
	case "json":
		l := slog.New(slog.NewJSONHandler(w, &slog.HandlerOptions{Level: lvl}))
		if name != "" {
			l = l.With("logger", name)
		}
		return l, nil
	}
	return nil, fmt.Errorf("unknown log format %q (want text or json)", format)
}

// CaptureStdLog reroutes the standard library's global log package
// through l at info level, so packages still calling log.Printf emit
// structured lines. It clears the std logger's flags and prefix (the
// slog handler owns both).
func CaptureStdLog(l *slog.Logger) {
	log.SetFlags(0)
	log.SetPrefix("")
	log.SetOutput(stdBridge{l})
}

// stdBridge adapts the std log package's writer contract (one formatted
// line per Write) onto a slog.Logger.
type stdBridge struct{ l *slog.Logger }

// Write logs each line handed over by the std log package at info level.
func (b stdBridge) Write(p []byte) (int, error) {
	b.l.Info(strings.TrimRight(string(p), "\n"))
	return len(p), nil
}

// plainHandler renders records as the historical single-line text
// format: "<prefix><level: ><msg> k=v k=v". Info-level lines carry no
// level tag, so lifecycle messages ("listening on ...") keep the exact
// shape scripts already grep for.
type plainHandler struct {
	w      io.Writer
	mu     *sync.Mutex
	prefix string
	level  slog.Level
	attrs  string // pre-rendered " k=v" pairs from WithAttrs
	groups string // dotted open-group prefix from WithGroup
}

// Enabled implements slog.Handler.
func (h *plainHandler) Enabled(_ context.Context, l slog.Level) bool { return l >= h.level }

// Handle implements slog.Handler: one atomic line per record.
func (h *plainHandler) Handle(_ context.Context, rec slog.Record) error {
	var b strings.Builder
	b.WriteString(h.prefix)
	switch {
	case rec.Level >= slog.LevelError:
		b.WriteString("error: ")
	case rec.Level >= slog.LevelWarn:
		b.WriteString("warn: ")
	case rec.Level < slog.LevelInfo:
		b.WriteString("debug: ")
	}
	b.WriteString(rec.Message)
	b.WriteString(h.attrs)
	rec.Attrs(func(a slog.Attr) bool {
		appendAttr(&b, h.groups, a)
		return true
	})
	b.WriteByte('\n')
	h.mu.Lock()
	defer h.mu.Unlock()
	_, err := io.WriteString(h.w, b.String())
	return err
}

// WithAttrs implements slog.Handler by pre-rendering the attrs.
func (h *plainHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	var b strings.Builder
	b.WriteString(h.attrs)
	for _, a := range attrs {
		appendAttr(&b, h.groups, a)
	}
	nh := *h
	nh.attrs = b.String()
	return &nh
}

// WithGroup implements slog.Handler with dotted key prefixes.
func (h *plainHandler) WithGroup(name string) slog.Handler {
	nh := *h
	if name != "" {
		nh.groups = h.groups + name + "."
	}
	return &nh
}

// appendAttr renders one attr (recursing into groups) as " key=value",
// quoting values that contain spaces or quotes.
func appendAttr(b *strings.Builder, groups string, a slog.Attr) {
	a.Value = a.Value.Resolve()
	if a.Value.Kind() == slog.KindGroup {
		prefix := groups
		if a.Key != "" {
			prefix += a.Key + "."
		}
		for _, ga := range a.Value.Group() {
			appendAttr(b, prefix, ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	v := a.Value.String()
	b.WriteByte(' ')
	b.WriteString(groups)
	b.WriteString(a.Key)
	b.WriteByte('=')
	if strings.ContainsAny(v, " \t\n\"=") {
		fmt.Fprintf(b, "%q", v)
	} else {
		b.WriteString(v)
	}
}
