package fmindex

import (
	"fmt"
	"math/bits"
	"sync/atomic"
)

// Alphabet: input text uses 2-bit DNA codes 0..3; internally every code is
// shifted by +1 so that 0 is the unique sentinel appended to the text.
const (
	sigma     = 5  // sentinel + ACGT
	occStride = 64 // occ checkpoint interval
	saSample  = 32 // suffix-array sampling rate
)

// FM is an FM-index over a DNA text.
type FM struct {
	n   int    // text length including sentinel
	bwt []byte // Burrows-Wheeler transform (values 0..4)
	c   [sigma + 1]int32

	// occ checkpoints: occCp[(i/occStride)*sigma + ch] = occurrences of ch
	// in bwt[0:i-i%occStride].
	occCp []int32

	// Sampled suffix array: rows i with sa[i] % saSample == 0 are marked in
	// sampledBits; their sa values are in sampleVal, indexed by the rank of
	// the marked row.
	sampledBits []uint64
	sampleRank  []int32 // popcount prefix per 64-row block
	sampleVal   []int32

	// Ops tallies search work; construction work is reported separately.
	Ops Ops
	// BuildOps is the construction work (suffix array + BWT + tables).
	BuildOps Ops
}

// New builds the FM-index of a DNA code text (values 0..3). The sentinel is
// appended internally. Construction is serial — that is the point of the
// baseline comparison.
func New(codes []byte) (*FM, error) {
	for i, c := range codes {
		if c > 3 {
			return nil, fmt.Errorf("fmindex: code %d at position %d out of range", c, i)
		}
	}
	text := make([]byte, len(codes)+1)
	for i, c := range codes {
		text[i] = c + 1
	}
	text[len(codes)] = 0

	f := &FM{n: len(text)}
	sa := BuildSuffixArray(text, &f.BuildOps)

	// BWT.
	f.bwt = make([]byte, f.n)
	for i, s := range sa {
		if s == 0 {
			f.bwt[i] = text[f.n-1]
		} else {
			f.bwt[i] = text[s-1]
		}
	}
	f.BuildOps.SortOps += int64(f.n)

	// C array.
	var counts [sigma]int32
	for _, ch := range text {
		counts[ch]++
	}
	for ch := 1; ch <= sigma; ch++ {
		f.c[ch] = f.c[ch-1] + counts[ch-1]
	}

	// Occ checkpoints.
	nCp := (f.n + occStride - 1) / occStride
	f.occCp = make([]int32, (nCp+1)*sigma)
	var run [sigma]int32
	for i := 0; i < f.n; i++ {
		if i%occStride == 0 {
			copy(f.occCp[(i/occStride)*sigma:], run[:])
		}
		run[f.bwt[i]]++
	}
	copy(f.occCp[nCp*sigma:], run[:])
	f.BuildOps.SortOps += int64(f.n)

	// Sampled SA.
	nBlocks := (f.n + 63) / 64
	f.sampledBits = make([]uint64, nBlocks)
	f.sampleRank = make([]int32, nBlocks+1)
	for i, s := range sa {
		if s%saSample == 0 {
			f.sampledBits[i/64] |= 1 << (uint(i) % 64)
		}
	}
	for b := 0; b < nBlocks; b++ {
		f.sampleRank[b+1] = f.sampleRank[b] + int32(bits.OnesCount64(f.sampledBits[b]))
	}
	f.sampleVal = make([]int32, f.sampleRank[nBlocks])
	for i, s := range sa {
		if s%saSample == 0 {
			f.sampleVal[f.rankSampled(int32(i))] = s
		}
	}
	f.BuildOps.SortOps += int64(f.n)
	return f, nil
}

// Len returns the indexed text length including the sentinel.
func (f *FM) Len() int { return f.n }

// IndexBytes estimates the index memory footprint — what a pMap instance
// must replicate per process (Table II's memory constraint).
func (f *FM) IndexBytes() int64 {
	return int64(len(f.bwt)) + int64(len(f.occCp))*4 +
		int64(len(f.sampledBits))*8 + int64(len(f.sampleRank))*4 + int64(len(f.sampleVal))*4
}

// occ returns the number of occurrences of ch in bwt[0:i]. Safe for
// concurrent use: the work counter is updated atomically so parallel
// mapping threads can share one index.
func (f *FM) occ(ch byte, i int32) int32 {
	atomic.AddInt64(&f.Ops.FMProbes, 1)
	cp := int(i) / occStride
	cnt := f.occCp[cp*sigma+int(ch)]
	for j := cp * occStride; j < int(i); j++ {
		if f.bwt[j] == ch {
			cnt++
		}
	}
	return cnt
}

// Count performs backward search for a DNA-code pattern (values 0..3) and
// returns the SA interval [lo, hi) of exact matches.
func (f *FM) Count(pat []byte) (lo, hi int32) {
	lo, hi = 0, int32(f.n)
	for i := len(pat) - 1; i >= 0 && lo < hi; i-- {
		ch := pat[i] + 1
		lo = f.c[ch] + f.occ(ch, lo)
		hi = f.c[ch] + f.occ(ch, hi)
	}
	return lo, hi
}

// rankSampled returns the number of sampled rows before row i.
func (f *FM) rankSampled(i int32) int32 {
	b := int(i) / 64
	r := f.sampleRank[b]
	r += int32(bits.OnesCount64(f.sampledBits[b] & ((1 << (uint(i) % 64)) - 1)))
	return r
}

func (f *FM) isSampled(i int32) bool {
	return f.sampledBits[int(i)/64]&(1<<(uint(i)%64)) != 0
}

// lf is the last-to-first mapping.
func (f *FM) lf(i int32) int32 {
	ch := f.bwt[i]
	return f.c[ch] + f.occ(ch, i)
}

// TextPos resolves SA row i to a text position by walking LF until a
// sampled row is reached — the classic sampled-SA locate.
func (f *FM) TextPos(row int32) int32 {
	steps := int32(0)
	for !f.isSampled(row) {
		row = f.lf(row)
		steps++
	}
	atomic.AddInt64(&f.Ops.LocateSteps, int64(steps))
	pos := f.sampleVal[f.rankSampled(row)] + steps
	if pos >= int32(f.n) {
		pos -= int32(f.n)
	}
	return pos
}

// Locate returns up to maxHits text positions of the pattern, in
// unspecified order. maxHits <= 0 means unlimited.
func (f *FM) Locate(pat []byte, maxHits int) []int32 {
	lo, hi := f.Count(pat)
	n := int(hi - lo)
	if n <= 0 {
		return nil
	}
	if maxHits > 0 && n > maxHits {
		n = maxHits
	}
	out := make([]int32, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, f.TextPos(lo+int32(i)))
	}
	return out
}
