package fmindex

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"github.com/lbl-repro/meraligner/internal/dna"
)

// naiveSA computes the suffix array by direct comparison sorting.
func naiveSA(text []byte) []int32 {
	n := len(text)
	sa := make([]int32, n)
	for i := range sa {
		sa[i] = int32(i)
	}
	sort.Slice(sa, func(a, b int) bool {
		i, j := sa[a], sa[b]
		for int(i) < n && int(j) < n {
			if text[i] != text[j] {
				return text[i] < text[j]
			}
			i++
			j++
		}
		return int(i) == n
	})
	return sa
}

func TestSuffixArrayMatchesNaive(t *testing.T) {
	cases := [][]byte{
		{},
		{0},
		{1, 1, 1, 1},
		{0, 1, 2, 3, 0, 1, 2, 3},
		{3, 2, 1, 0},
		{1, 0, 1, 0, 1, 0, 1},
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 30; i++ {
		n := 1 + rng.Intn(300)
		txt := make([]byte, n)
		for j := range txt {
			txt[j] = byte(rng.Intn(4))
		}
		cases = append(cases, txt)
	}
	for ci, txt := range cases {
		got := BuildSuffixArray(txt, nil)
		want := naiveSA(txt)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: sa[%d] = %d, want %d", ci, i, got[i], want[i])
			}
		}
	}
}

func TestSuffixArrayProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(200)
		txt := make([]byte, n)
		for j := range txt {
			txt[j] = byte(rng.Intn(3)) // small alphabet stresses ties
		}
		got := BuildSuffixArray(txt, nil)
		want := naiveSA(txt)
		for i := range want {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSuffixArrayCountsOps(t *testing.T) {
	var ops Ops
	txt := make([]byte, 1000)
	BuildSuffixArray(txt, &ops)
	if ops.SortPasses == 0 || ops.SortOps == 0 {
		t.Error("ops not counted")
	}
}

// naiveFind returns all occurrences of pat in text by scanning.
func naiveFind(text, pat []byte) []int32 {
	var out []int32
outer:
	for i := 0; i+len(pat) <= len(text); i++ {
		for j := range pat {
			if text[i+j] != pat[j] {
				continue outer
			}
		}
		out = append(out, int32(i))
	}
	return out
}

func TestFMCountAndLocateMatchNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	text := dna.Random(rng, 2000).Codes()
	fm, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 200; trial++ {
		plen := 1 + rng.Intn(30)
		var pat []byte
		if rng.Intn(2) == 0 && plen < len(text) {
			start := rng.Intn(len(text) - plen)
			pat = text[start : start+plen]
		} else {
			pat = make([]byte, plen)
			for i := range pat {
				pat[i] = byte(rng.Intn(4))
			}
		}
		want := naiveFind(text, pat)
		lo, hi := fm.Count(pat)
		if int(hi-lo) != len(want) {
			t.Fatalf("Count(%v) = %d, want %d", pat, hi-lo, len(want))
		}
		got := fm.Locate(pat, 0)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Locate mismatch at %d: %v vs %v", i, got, want)
			}
		}
	}
}

func TestFMLocateMaxHits(t *testing.T) {
	text := make([]byte, 1000) // all A: pattern AA occurs 999 times
	fm, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	hits := fm.Locate([]byte{0, 0}, 10)
	if len(hits) != 10 {
		t.Errorf("maxHits ignored: got %d", len(hits))
	}
}

func TestFMEmptyAndMissingPattern(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	text := dna.Random(rng, 500).Codes()
	fm, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := fm.Count(nil)
	if int(hi-lo) != fm.Len() {
		t.Errorf("empty pattern should match every rotation: %d", hi-lo)
	}
	// A pattern longer than the text cannot match.
	long := make([]byte, 600)
	if hits := fm.Locate(long, 0); len(hits) != 0 {
		t.Errorf("impossible pattern located: %v", hits)
	}
}

func TestFMRejectsBadCodes(t *testing.T) {
	if _, err := New([]byte{0, 1, 9}); err == nil {
		t.Error("bad code accepted")
	}
}

func TestFMSearchCountsOps(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	text := dna.Random(rng, 1000).Codes()
	fm, err := New(text)
	if err != nil {
		t.Fatal(err)
	}
	if fm.BuildOps.SortOps == 0 {
		t.Error("build ops not counted")
	}
	before := fm.Ops.FMProbes
	fm.Count(text[10:40])
	if fm.Ops.FMProbes <= before {
		t.Error("search ops not counted")
	}
	if fm.IndexBytes() <= 0 {
		t.Error("IndexBytes <= 0")
	}
}

func BenchmarkBuildSA1M(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	text := dna.Random(rng, 1_000_000).Codes()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildSuffixArray(text, nil)
	}
}

func BenchmarkFMCount31(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	text := dna.Random(rng, 1_000_000).Codes()
	fm, err := New(text)
	if err != nil {
		b.Fatal(err)
	}
	pat := text[5000:5031]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Count(pat)
	}
}
