// Package fmindex implements the index machinery behind the BWA-mem-like
// and Bowtie2-like baselines: suffix-array construction (Manber-Myers
// prefix doubling with LSD radix sort — deliberately a serial algorithm, as
// the baselines' index construction is the serial bottleneck the paper
// measures in Table II), the Burrows-Wheeler transform, and an FM-index
// with occurrence checkpoints and a sampled suffix array.
//
// All operations tally their work into an Ops counter so experiments can
// convert the baselines' measured work into the same simulated-time units
// as merAligner (see internal/upc).
package fmindex

// Ops counts the elementary operations of index construction and search.
type Ops struct {
	SortPasses  int64 // radix/counting passes over the full text
	SortOps     int64 // element moves during suffix-array construction
	FMProbes    int64 // occ-table probes during backward search
	LocateSteps int64 // LF walk steps during locate
}

// BuildSuffixArray computes the suffix array of text by prefix doubling
// with radix sort, O(n log n). Ops (if non-nil) receives the work tally.
func BuildSuffixArray(text []byte, ops *Ops) []int32 {
	n := len(text)
	sa := make([]int32, n)
	if n == 0 {
		return sa
	}
	rank := make([]int32, n)
	tmpRank := make([]int32, n)
	tmp := make([]int32, n)

	// Initial ordering by single character (counting sort over 256).
	var cnt [257]int32
	for _, c := range text {
		cnt[c+1]++
	}
	for i := 1; i < 257; i++ {
		cnt[i] += cnt[i-1]
	}
	for i := 0; i < n; i++ {
		sa[cnt[text[i]]] = int32(i)
		cnt[text[i]]++
	}
	r := int32(0)
	rank[sa[0]] = 0
	for i := 1; i < n; i++ {
		if text[sa[i]] != text[sa[i-1]] {
			r++
		}
		rank[sa[i]] = r
	}
	if ops != nil {
		ops.SortPasses++
		ops.SortOps += int64(n)
	}

	buckets := make([]int32, n+1)
	for k := 1; int32(r) < int32(n-1) && k < n; k <<= 1 {
		// Sort by (rank[i], rank[i+k]) with two stable counting passes.
		key2 := func(i int32) int32 {
			if int(i)+k < n {
				return rank[int(i)+k] + 1
			}
			return 0
		}
		// Pass 1: by key2.
		for i := range buckets {
			buckets[i] = 0
		}
		for i := 0; i < n; i++ {
			buckets[key2(int32(i))]++
		}
		for i := 1; i <= n; i++ {
			buckets[i] += buckets[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			v := sa[i]
			buckets[key2(v)]--
			tmp[buckets[key2(v)]] = v
		}
		// Pass 2: by rank[i] (stable).
		for i := range buckets {
			buckets[i] = 0
		}
		for i := 0; i < n; i++ {
			buckets[rank[i]]++
		}
		for i := 1; i <= n; i++ {
			buckets[i] += buckets[i-1]
		}
		for i := n - 1; i >= 0; i-- {
			v := tmp[i]
			buckets[rank[v]]--
			sa[buckets[rank[v]]] = v
		}
		// Re-rank.
		tmpRank[sa[0]] = 0
		r = 0
		for i := 1; i < n; i++ {
			cur, prev := sa[i], sa[i-1]
			same := rank[cur] == rank[prev] && key2(cur) == key2(prev)
			if !same {
				r++
			}
			tmpRank[cur] = r
		}
		rank, tmpRank = tmpRank, rank
		if ops != nil {
			ops.SortPasses += 2
			ops.SortOps += int64(2 * n)
		}
	}
	return sa
}
