// Package faultinject is an in-process TCP chaos proxy for deterministic
// fault-injection testing of the serving tiers. A Proxy listens on a
// loopback port and forwards every accepted connection to one upstream
// target, optionally injecting faults on the way:
//
//   - added latency before the first upstream byte (a slow network or an
//     overloaded accept queue)
//   - connection resets at a configured probability (a crashing replica, a
//     flaky middlebox)
//   - blackholes: the connection is accepted and then never answered (a
//     partitioned host — the worst failure mode, because only timeouts
//     detect it)
//   - truncated responses: the upstream's reply is cut after N bytes (a
//     proxy dying mid-body)
//   - slow-loris responses: the reply trickles out in small delayed chunks
//
// Fault decisions come from a seeded math/rand/v2 source guarded by the
// proxy's mutex, so a given seed yields the same fault schedule on every
// run — chaos tests are reproducible, not flaky. All knobs are mutable at
// runtime (SetLatency, SetErrorRate, ...), so one test can walk a replica
// through healthy → failing → healed without restarting anything, and
// KillActive resets every live connection at once to simulate a process
// kill. cmd/chaosproxy wraps a Proxy for shell-driven CI smoke tests.
package faultinject

import (
	"errors"
	"io"
	"math/rand/v2"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Proxy is one chaos proxy instance: a loopback listener forwarding to a
// fixed upstream target with injectable faults. Create with New, stop with
// Close. Safe for concurrent use.
type Proxy struct {
	ln     net.Listener
	target string

	mu        sync.Mutex
	rng       *rand.Rand
	latency   time.Duration // delay before dialing upstream
	errorRate float64       // probability of resetting an accepted connection
	blackhole bool          // accept and never answer
	truncate  int64         // cut the response after this many bytes (0 = off)
	loris     time.Duration // per-chunk delay while copying the response
	conns     map[net.Conn]struct{}

	accepted    atomic.Int64
	resets      atomic.Int64
	blackholed  atomic.Int64
	truncations atomic.Int64

	closed atomic.Bool
	wg     sync.WaitGroup
}

// Stats is a snapshot of a Proxy's fault counters.
type Stats struct {
	Accepted    int64 // connections accepted
	Resets      int64 // connections reset by injected error or KillActive
	Blackholed  int64 // connections swallowed by the blackhole
	Truncations int64 // responses cut short
}

// New starts a Proxy on a fresh loopback port forwarding to target
// (host:port). seed fixes the fault schedule: the same seed and the same
// sequence of connections yield the same injected faults.
func New(target string, seed uint64) (*Proxy, error) {
	return Listen("127.0.0.1:0", target, seed)
}

// Listen is New with an explicit listen address (cmd/chaosproxy's face;
// use ":0" forms for a kernel-assigned port).
func Listen(addr, target string, seed uint64) (*Proxy, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	p := &Proxy{
		ln:     ln,
		target: target,
		rng:    rand.New(rand.NewPCG(seed, seed)),
		conns:  make(map[net.Conn]struct{}),
	}
	p.wg.Add(1)
	go p.accept()
	return p, nil
}

// Addr returns the proxy's listen address (host:port) — what a router
// should be pointed at in place of the real replica address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// URL returns the proxy's address as an http:// base URL.
func (p *Proxy) URL() string { return "http://" + p.Addr() }

// SetLatency injects d of delay before each new connection reaches the
// upstream. Zero restores pass-through.
func (p *Proxy) SetLatency(d time.Duration) {
	p.mu.Lock()
	p.latency = d
	p.mu.Unlock()
}

// SetErrorRate makes each new connection be reset (RST, not FIN) with
// probability rate in [0, 1]. Zero restores pass-through.
func (p *Proxy) SetErrorRate(rate float64) {
	p.mu.Lock()
	p.errorRate = rate
	p.mu.Unlock()
}

// SetBlackhole, when on, accepts connections and never answers them:
// no upstream dial, no bytes, no close until the client gives up or the
// proxy shuts down.
func (p *Proxy) SetBlackhole(on bool) {
	p.mu.Lock()
	p.blackhole = on
	p.mu.Unlock()
}

// SetTruncate cuts each response after n upstream bytes, then resets the
// connection — a mid-body failure the client sees as an unexpected EOF.
// Zero restores whole responses.
func (p *Proxy) SetTruncate(n int64) {
	p.mu.Lock()
	p.truncate = n
	p.mu.Unlock()
}

// SetSlowLoris trickles each response out in 64-byte chunks with d between
// chunks. Zero restores full-speed copies.
func (p *Proxy) SetSlowLoris(d time.Duration) {
	p.mu.Lock()
	p.loris = d
	p.mu.Unlock()
}

// KillActive resets every live proxied connection at once — the network
// face of kill -9 on the upstream. New connections are still accepted
// (and still forwarded, unless other faults say otherwise).
func (p *Proxy) KillActive() {
	p.mu.Lock()
	for c := range p.conns {
		abort(c)
		p.resets.Add(1)
	}
	clear(p.conns)
	p.mu.Unlock()
}

// Stats returns the proxy's live fault counters.
func (p *Proxy) Stats() Stats {
	return Stats{
		Accepted:    p.accepted.Load(),
		Resets:      p.resets.Load(),
		Blackholed:  p.blackholed.Load(),
		Truncations: p.truncations.Load(),
	}
}

// Close stops the listener and resets every live connection.
func (p *Proxy) Close() {
	if p.closed.Swap(true) {
		return
	}
	p.ln.Close()
	p.KillActive()
	p.wg.Wait()
}

// decide samples the fault plan of one new connection under the mutex, so
// concurrent connections draw from the seeded schedule in accept order.
type plan struct {
	latency   time.Duration
	reset     bool
	blackhole bool
	truncate  int64
	loris     time.Duration
}

func (p *Proxy) decide() plan {
	p.mu.Lock()
	defer p.mu.Unlock()
	return plan{
		latency:   p.latency,
		reset:     p.errorRate > 0 && p.rng.Float64() < p.errorRate,
		blackhole: p.blackhole,
		truncate:  p.truncate,
		loris:     p.loris,
	}
}

func (p *Proxy) accept() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.accepted.Add(1)
		p.track(conn)
		p.wg.Add(1)
		go p.serve(conn)
	}
}

func (p *Proxy) track(c net.Conn) {
	p.mu.Lock()
	if p.closed.Load() {
		p.mu.Unlock()
		abort(c)
		return
	}
	p.conns[c] = struct{}{}
	p.mu.Unlock()
}

func (p *Proxy) untrack(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// serve forwards one connection under its fault plan.
func (p *Proxy) serve(down net.Conn) {
	defer p.wg.Done()
	pl := p.decide()
	if pl.blackhole {
		// Swallow the connection: read and discard so the client can send
		// its request, answer nothing, hold until the client hangs up or
		// KillActive/Close resets us.
		p.blackholed.Add(1)
		_, _ = io.Copy(io.Discard, down)
		p.untrack(down)
		down.Close()
		return
	}
	if pl.reset {
		p.resets.Add(1)
		p.untrack(down)
		abort(down)
		return
	}
	if pl.latency > 0 {
		time.Sleep(pl.latency)
	}
	up, err := net.Dial("tcp", p.target)
	if err != nil {
		p.resets.Add(1)
		p.untrack(down)
		abort(down)
		return
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // request path: client -> upstream, always at full speed
		defer wg.Done()
		_, _ = io.Copy(up, down)
		half(up)
	}()
	// Response path: upstream -> client, where truncation and slow-loris
	// apply.
	p.copyResponse(down, up, pl)
	up.Close()
	wg.Wait()
	p.untrack(down)
	down.Close()
}

// copyResponse streams upstream bytes to the client under the plan's
// truncation and slow-loris settings.
func (p *Proxy) copyResponse(down, up net.Conn, pl plan) {
	if pl.truncate <= 0 && pl.loris <= 0 {
		_, _ = io.Copy(down, up)
		half(down)
		return
	}
	var written int64
	buf := make([]byte, 64)
	for {
		if pl.truncate > 0 && written >= pl.truncate {
			p.truncations.Add(1)
			abort(down)
			return
		}
		n, err := up.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if pl.truncate > 0 && written+int64(n) > pl.truncate {
				chunk = chunk[:pl.truncate-written]
			}
			if _, werr := down.Write(chunk); werr != nil {
				return
			}
			written += int64(len(chunk))
			if pl.loris > 0 {
				time.Sleep(pl.loris)
			}
		}
		if err != nil {
			if !errors.Is(err, io.EOF) {
				abort(down)
				return
			}
			half(down)
			return
		}
	}
}

// abort resets a connection (RST instead of FIN) so the peer sees a hard
// failure, the way a killed process's kernel answers.
func abort(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.SetLinger(0)
	}
	c.Close()
}

// half closes the write side of a TCP connection, letting the peer finish
// reading a complete response before the full close.
func half(c net.Conn) {
	if tc, ok := c.(*net.TCPConn); ok {
		_ = tc.CloseWrite()
	}
}
