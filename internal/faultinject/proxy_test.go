package faultinject

import (
	"context"
	"errors"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"
)

// upstream starts a plain HTTP echo server and a proxy in front of it.
func upstream(t *testing.T, seed uint64) (*httptest.Server, *Proxy) {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "text/plain")
		w.Write([]byte("echo:"))
		w.Write(body)
	}))
	t.Cleanup(ts.Close)
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	p, err := New(u.Host, seed)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return ts, p
}

// oneShot issues one POST through the proxy on a fresh connection (no
// keep-alive reuse, so every request exercises the accept-time fault plan).
func oneShot(p *Proxy, timeout time.Duration, body string) (string, error) {
	hc := &http.Client{
		Timeout:   timeout,
		Transport: &http.Transport{DisableKeepAlives: true},
	}
	resp, err := hc.Post(p.URL(), "text/plain", strings.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestProxyPassThrough(t *testing.T) {
	_, p := upstream(t, 1)
	got, err := oneShot(p, 5*time.Second, "hello")
	if err != nil {
		t.Fatal(err)
	}
	if got != "echo:hello" {
		t.Fatalf("body = %q", got)
	}
	if st := p.Stats(); st.Accepted != 1 || st.Resets != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestProxyLatency(t *testing.T) {
	_, p := upstream(t, 1)
	p.SetLatency(80 * time.Millisecond)
	start := time.Now()
	if _, err := oneShot(p, 5*time.Second, "x"); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("request took %s, want >= 80ms of injected latency", d)
	}
}

func TestProxyErrorRateResetsConnections(t *testing.T) {
	_, p := upstream(t, 42)
	p.SetErrorRate(1)
	if _, err := oneShot(p, 2*time.Second, "x"); err == nil {
		t.Fatal("request through a 100% error-rate proxy succeeded")
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Fatalf("stats = %+v, want a counted reset", st)
	}
	p.SetErrorRate(0)
	if _, err := oneShot(p, 5*time.Second, "x"); err != nil {
		t.Fatalf("request after clearing the error rate: %v", err)
	}
}

func TestProxyBlackholeHangsUntilClientTimeout(t *testing.T) {
	_, p := upstream(t, 1)
	p.SetBlackhole(true)
	start := time.Now()
	_, err := oneShot(p, 100*time.Millisecond, "x")
	if err == nil {
		t.Fatal("request through a blackhole succeeded")
	}
	if d := time.Since(start); d < 100*time.Millisecond {
		t.Fatalf("client gave up after %s, before its 100ms timeout — blackhole answered?", d)
	}
	if st := p.Stats(); st.Blackholed == 0 {
		t.Fatalf("stats = %+v, want a counted blackhole", st)
	}
}

func TestProxyTruncatesResponses(t *testing.T) {
	_, p := upstream(t, 1)
	p.SetTruncate(20) // inside the response headers: the body read must fail
	if body, err := oneShot(p, 2*time.Second, strings.Repeat("A", 4096)); err == nil {
		t.Fatalf("truncated response read succeeded: %d bytes", len(body))
	}
	if st := p.Stats(); st.Truncations == 0 {
		t.Fatalf("stats = %+v, want a counted truncation", st)
	}
}

func TestProxySlowLoris(t *testing.T) {
	_, p := upstream(t, 1)
	p.SetSlowLoris(20 * time.Millisecond)
	start := time.Now()
	got, err := oneShot(p, 10*time.Second, strings.Repeat("B", 300))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(got, strings.Repeat("B", 300)) {
		t.Fatalf("slow-loris response corrupted: %d bytes", len(got))
	}
	// Headers + 305-byte body in 64-byte chunks is at least 5 chunks.
	if d := time.Since(start); d < 80*time.Millisecond {
		t.Fatalf("slow-loris response arrived in %s, want trickled delivery", d)
	}
}

func TestProxyKillActiveResetsInflight(t *testing.T) {
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-time.After(5 * time.Second):
		case <-r.Context().Done():
			return
		}
		io.WriteString(w, "late")
	}))
	defer slow.Close()
	u, _ := url.Parse(slow.URL)
	p, err := New(u.Host, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	errc := make(chan error, 1)
	go func() {
		_, err := oneShot(p, 10*time.Second, "x")
		errc <- err
	}()
	// Wait for the connection to be in flight, then kill it.
	deadline := time.Now().Add(2 * time.Second)
	for p.Stats().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never arrived")
		}
		time.Sleep(5 * time.Millisecond)
	}
	time.Sleep(20 * time.Millisecond) // let it reach the upstream wait
	p.KillActive()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("killed connection's request succeeded")
		}
	case <-time.After(3 * time.Second):
		t.Fatal("killed connection's request never returned")
	}
	if st := p.Stats(); st.Resets == 0 {
		t.Fatalf("stats = %+v, want a counted reset", st)
	}
}

// TestDeterministicSchedule pins the reproducibility contract: the same
// seed yields the same accept-order fault decisions.
func TestDeterministicSchedule(t *testing.T) {
	draw := func(seed uint64) []bool {
		rng := rand.New(rand.NewPCG(seed, seed))
		out := make([]bool, 32)
		for i := range out {
			out[i] = rng.Float64() < 0.3
		}
		return out
	}
	a, b := draw(7), draw(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded schedules diverge at draw %d", i)
		}
	}

	// And end-to-end: two proxies with the same seed and error rate reset
	// the same subset of a serial request sequence.
	outcome := func(seed uint64) []bool {
		_, p := upstream(t, seed)
		p.SetErrorRate(0.5)
		var outs []bool
		for i := 0; i < 12; i++ {
			_, err := oneShot(p, 2*time.Second, "x")
			outs = append(outs, err == nil)
		}
		return outs
	}
	x, y := outcome(99), outcome(99)
	for i := range x {
		if x[i] != y[i] {
			t.Fatalf("same-seed proxies diverge at request %d: %v vs %v", i, x, y)
		}
	}
}

// TestProxyWithContextCancel: a caller abandoning a proxied request (ctx
// cancel) does not wedge the proxy; later requests still pass.
func TestProxyWithContextCancel(t *testing.T) {
	_, p := upstream(t, 1)
	p.SetLatency(200 * time.Millisecond)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, p.URL(), nil)
	_, err := http.DefaultClient.Do(req)
	if err == nil || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want ctx deadline", err)
	}
	p.SetLatency(0)
	if _, err := oneShot(p, 5*time.Second, "ok"); err != nil {
		t.Fatalf("request after canceled predecessor: %v", err)
	}
}
