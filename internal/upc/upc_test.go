package upc

import (
	"math"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func testCfg(threads, ppn int) MachineConfig {
	cfg := Edison(threads)
	cfg.PPN = ppn
	cfg.Workers = 4
	return cfg
}

func TestConfigValidate(t *testing.T) {
	if err := (MachineConfig{Threads: 0, PPN: 24}).Validate(); err == nil {
		t.Error("Threads=0 accepted")
	}
	if err := (MachineConfig{Threads: 4, PPN: 0}).Validate(); err == nil {
		t.Error("PPN=0 accepted")
	}
	if err := Edison(480).Validate(); err != nil {
		t.Errorf("Edison(480) invalid: %v", err)
	}
}

func TestNodeTopology(t *testing.T) {
	cfg := testCfg(48, 24)
	if cfg.Nodes() != 2 {
		t.Fatalf("Nodes() = %d, want 2", cfg.Nodes())
	}
	if cfg.NodeOf(0) != 0 || cfg.NodeOf(23) != 0 || cfg.NodeOf(24) != 1 || cfg.NodeOf(47) != 1 {
		t.Error("NodeOf misassigns threads")
	}
	// Partial last node.
	cfg = testCfg(50, 24)
	if cfg.Nodes() != 3 {
		t.Errorf("Nodes() = %d, want 3 for 50 threads ppn 24", cfg.Nodes())
	}
}

func TestRunPhaseExecutesEveryThread(t *testing.T) {
	m := MustNewMachine(testCfg(96, 24))
	var count int64
	seen := make([]int64, 96)
	m.RunPhase("touch", func(th *Thread) {
		atomic.AddInt64(&count, 1)
		atomic.AddInt64(&seen[th.ID], 1)
	})
	if count != 96 {
		t.Fatalf("phase ran %d threads, want 96", count)
	}
	for id, c := range seen {
		if c != 1 {
			t.Fatalf("thread %d ran %d times", id, c)
		}
	}
}

func TestPhaseWallIsMaxClock(t *testing.T) {
	m := MustNewMachine(testCfg(8, 4))
	stat := m.RunPhase("compute", func(th *Thread) {
		th.Compute(float64(th.ID+1) * 0.5)
	})
	if math.Abs(stat.Wall-4.0) > 1e-12 {
		t.Errorf("Wall = %v, want 4.0 (slowest thread)", stat.Wall)
	}
	if math.Abs(stat.MinClock-0.5) > 1e-12 {
		t.Errorf("MinClock = %v, want 0.5", stat.MinClock)
	}
	wantAvg := 0.5 * (1 + 2 + 3 + 4 + 5 + 6 + 7 + 8) / 8
	if math.Abs(stat.AvgClock-wantAvg) > 1e-9 {
		t.Errorf("AvgClock = %v, want %v", stat.AvgClock, wantAvg)
	}
}

func TestAccessClassification(t *testing.T) {
	cfg := testCfg(48, 24)
	m := MustNewMachine(cfg)
	stat := m.RunPhase("classify", func(th *Thread) {
		if th.ID != 0 {
			return
		}
		th.Get(0, 100)  // local
		th.Get(5, 100)  // same node
		th.Get(30, 100) // remote
	})
	c := stat.Counters
	if c.MsgsLocal != 1 || c.MsgsNode != 1 || c.MsgsRemote != 1 {
		t.Errorf("counter classification local/node/remote = %d/%d/%d, want 1/1/1",
			c.MsgsLocal, c.MsgsNode, c.MsgsRemote)
	}
	if c.BytesRemote != 100 || c.BytesNode != 100 {
		t.Errorf("bytes remote/node = %d/%d, want 100/100", c.BytesRemote, c.BytesNode)
	}
}

func TestRemoteCostExceedsNodeCostExceedsLocal(t *testing.T) {
	cfg := testCfg(48, 24)
	var local, node, remote float64
	m := MustNewMachine(cfg)
	m.RunPhase("cmp", func(th *Thread) {
		if th.ID != 0 {
			return
		}
		t0 := th.Comm
		th.Get(0, 64)
		local = th.Comm - t0
		t0 = th.Comm
		th.Get(7, 64)
		node = th.Comm - t0
		t0 = th.Comm
		th.Get(40, 64)
		remote = th.Comm - t0
	})
	if !(local < node && node < remote) {
		t.Errorf("cost ordering violated: local %v, node %v, remote %v", local, node, remote)
	}
}

func TestAtomicCosts(t *testing.T) {
	cfg := testCfg(48, 24)
	m := MustNewMachine(cfg)
	stat := m.RunPhase("atomics", func(th *Thread) {
		if th.ID == 0 {
			th.Atomic(40) // remote atomic
			th.Atomic(1)  // on-node atomic
			th.Atomic(0)  // own
		}
	})
	if stat.Counters.Atomics != 3 {
		t.Errorf("Atomics = %d, want 3", stat.Counters.Atomics)
	}
	if stat.MaxComm < cfg.AtomicLatency {
		t.Errorf("remote atomic cost not charged: comm %v < %v", stat.MaxComm, cfg.AtomicLatency)
	}
}

func TestAggregationReducesSimulatedTime(t *testing.T) {
	// The heart of Fig 8: sending M seeds one at a time must cost far more
	// than sending M/S aggregate transfers of S seeds.
	cfg := testCfg(48, 24)
	const seeds, entry, S = 10000, 16, 1000

	m1 := MustNewMachine(cfg)
	fine := m1.RunPhase("fine", func(th *Thread) {
		for i := 0; i < seeds; i++ {
			th.Atomic(40) // lock
			th.Put(40, entry)
		}
	})
	m2 := MustNewMachine(cfg)
	agg := m2.RunPhase("agg", func(th *Thread) {
		for i := 0; i < seeds/S; i++ {
			th.Atomic(40) // stack_ptr fetch-add
			th.Put(40, entry*S)
		}
	})
	ratio := fine.Wall / agg.Wall
	if ratio < 3 {
		t.Errorf("aggregating stores speedup = %.1fx, want >= 3x", ratio)
	}
}

func TestNICBoundRemote(t *testing.T) {
	cfg := testCfg(48, 24)
	m := MustNewMachine(cfg)
	const bytes = 1 << 26
	stat := m.RunPhase("blast", func(th *Thread) {
		// Every thread writes to the opposite node.
		dst := (th.ID + 24) % 48
		th.Put(dst, bytes)
	})
	nodeBytes := float64(24 * bytes)
	wantNIC := nodeBytes / cfg.NICBandwidth
	if math.Abs(stat.NICBound-wantNIC)/wantNIC > 1e-9 {
		t.Errorf("NICBound = %v, want %v", stat.NICBound, wantNIC)
	}
	if stat.Wall < wantNIC {
		t.Errorf("Wall %v below NIC bound %v", stat.Wall, wantNIC)
	}
}

func TestFSBound(t *testing.T) {
	cfg := testCfg(9600, 24)
	cfg.Workers = 8
	m := MustNewMachine(cfg)
	const perThread = 1 << 20
	stat := m.RunPhase("io", func(th *Thread) {
		th.ReadFile(perThread)
	})
	total := float64(9600 * perThread)
	wantFS := total / cfg.FSPeakBandwidth
	if math.Abs(stat.FSBound-wantFS)/wantFS > 1e-9 {
		t.Errorf("FSBound = %v, want %v", stat.FSBound, wantFS)
	}
	if stat.Wall < wantFS {
		t.Errorf("Wall %v below FS bound %v", stat.Wall, wantFS)
	}
}

func TestPartitionRangeCoversAllItems(t *testing.T) {
	f := func(countRaw, threadsRaw uint16) bool {
		count := int(countRaw % 10000)
		threads := 1 + int(threadsRaw%97)
		cfg := MachineConfig{Threads: threads, PPN: 24}
		covered := 0
		prevHi := 0
		for id := 0; id < threads; id++ {
			lo, hi := cfg.PartitionRange(count, id)
			if lo != prevHi {
				return false // ranges must be contiguous
			}
			if hi < lo {
				return false
			}
			covered += hi - lo
			prevHi = hi
		}
		return covered == count && prevHi == count
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestPartitionRangeBalance(t *testing.T) {
	cfg := MachineConfig{Threads: 7, PPN: 24}
	sizes := map[int]int{}
	for id := 0; id < 7; id++ {
		lo, hi := cfg.PartitionRange(100, id)
		sizes[hi-lo]++
	}
	// 100 = 7*14 + 2, so two threads get 15 and five get 14.
	if sizes[15] != 2 || sizes[14] != 5 {
		t.Errorf("partition sizes = %v, want 2x15 + 5x14", sizes)
	}
}

func TestTotalWallAndPhaseLookup(t *testing.T) {
	m := MustNewMachine(testCfg(4, 4))
	m.RunPhase("a", func(th *Thread) { th.Compute(1) })
	m.RunPhase("b", func(th *Thread) { th.Compute(2) })
	if math.Abs(m.TotalWall()-3) > 1e-12 {
		t.Errorf("TotalWall = %v, want 3", m.TotalWall())
	}
	if p, ok := m.Phase("b"); !ok || p.Wall != 2 {
		t.Errorf("Phase(b) = %+v, %v", p, ok)
	}
	if _, ok := m.Phase("missing"); ok {
		t.Error("Phase(missing) found")
	}
	if len(m.Phases()) != 2 {
		t.Errorf("Phases len = %d, want 2", len(m.Phases()))
	}
	if m.Summary() == "" {
		t.Error("empty summary")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() float64 {
		m := MustNewMachine(testCfg(96, 24))
		stat := m.RunPhase("work", func(th *Thread) {
			for i := 0; i < 100; i++ {
				th.Get((th.ID+i)%96, 64)
				th.Compute(1e-7)
			}
		})
		return stat.Wall
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("non-deterministic wall: %v vs %v", a, b)
	}
}

func TestThreadRngIndependentAndReproducible(t *testing.T) {
	draw := func() (int64, int64) {
		m := MustNewMachine(testCfg(2, 2))
		var v [2]int64
		m.RunPhase("rng", func(th *Thread) {
			v[th.ID] = th.Rng.Int63()
		})
		return v[0], v[1]
	}
	a0, a1 := draw()
	b0, b1 := draw()
	if a0 != b0 || a1 != b1 {
		t.Error("thread RNG not reproducible across identical machines")
	}
	if a0 == a1 {
		t.Error("distinct threads share an RNG stream")
	}
}

func TestImbalance(t *testing.T) {
	minL, maxL, avg := Imbalance([]float64{1, 2, 3, 6})
	if minL != 1 || maxL != 6 || avg != 3 {
		t.Errorf("Imbalance = %v %v %v, want 1 6 3", minL, maxL, avg)
	}
	minL, maxL, avg = Imbalance(nil)
	if minL != 0 || maxL != 0 || avg != 0 {
		t.Error("Imbalance(nil) != zeros")
	}
}

func TestNewMachineRejectsInvalid(t *testing.T) {
	if _, err := NewMachine(MachineConfig{}); err == nil {
		t.Error("NewMachine accepted zero config")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustNewMachine did not panic")
		}
	}()
	MustNewMachine(MachineConfig{})
}

func BenchmarkRunPhaseOverhead(b *testing.B) {
	cfg := testCfg(480, 24)
	cfg.Workers = 8
	m := MustNewMachine(cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.RunPhase("noop", func(th *Thread) {})
	}
}
