// Package upc simulates the PGAS execution environment the paper's UPC code
// runs on: a distributed-memory machine of N nodes x PPN cores, a partitioned
// global address space with one-sided puts/gets and global atomics, and a
// bulk-synchronous phase structure.
//
// The simulator executes the *real* algorithms against real in-process data
// structures — hash tables are actually built, caches actually hit or miss,
// Smith-Waterman actually runs — while synthesizing *time* from a calibrated
// cost model charged to per-thread virtual clocks. Message counts, byte
// volumes, atomics and cache statistics are therefore measured, not modeled;
// only their conversion to seconds is synthetic. Phase wall time is the
// maximum thread clock within the phase (threads barrier between phases, as
// in the UPC original), additionally lower-bounded by per-node NIC capacity
// and aggregate filesystem bandwidth, which is how congestion enters.
//
// Default constants approximate NERSC's Edison (Cray XC30, §VI-A): 24-core
// nodes, ~1 microsecond one-sided remote latency on Aries, multi-GB/s links.
package upc

import (
	"fmt"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"time"
)

// MachineConfig describes the simulated machine and its cost model. All
// times are in seconds, bandwidths in bytes/second.
type MachineConfig struct {
	Threads int // total UPC threads (the paper's "cores")
	PPN     int // threads per node (Edison: 24)

	// Communication costs.
	RemoteLatency float64 // one-sided get/put to another node
	NodeLatency   float64 // shared-memory access to another thread on-node
	LocalLatency  float64 // access to the thread's own partition
	LinkBandwidth float64 // per-thread injection bandwidth, off-node
	NICBandwidth  float64 // per-node NIC aggregate bandwidth (congestion)
	AtomicLatency float64 // global atomic (fetch-add) on a remote location

	// Computation costs, charged per measured event.
	SeedExtractCost float64 // per seed extracted from a target/query
	HashCost        float64 // per seed hashed (djb2 + owner computation)
	BufferCopyCost  float64 // per seed staged into an aggregation buffer
	InsertCost      float64 // per seed drained into a local bucket
	LookupCost      float64 // per local hash-table probe
	MemcmpCost      float64 // per byte of exact-match comparison
	SWCellCost      float64 // per Smith-Waterman DP cell
	SWSetupCost     float64 // per Smith-Waterman invocation (query profile)

	// I/O model: a shared parallel filesystem. Per-client bandwidth scales
	// until the aggregate saturates at FSPeakBandwidth (Lustre-like).
	FSClientBandwidth float64 // per-thread streaming bandwidth
	FSPeakBandwidth   float64 // filesystem aggregate ceiling
	FSOpLatency       float64 // per open/seek

	// Workers bounds real goroutines executing simulated threads.
	// 0 means runtime.NumCPU(). Use 1 for fully deterministic runs.
	Workers int

	// Seed for per-thread RNGs (load-balance permutations, etc.).
	Seed int64
}

// Edison returns a MachineConfig approximating a Cray XC30 partition with
// the given total thread count, 24 threads per node.
func Edison(threads int) MachineConfig {
	return MachineConfig{
		Threads: threads,
		PPN:     24,

		RemoteLatency: 1.1e-6,
		NodeLatency:   9e-8,
		LocalLatency:  4e-9,
		LinkBandwidth: 6.0e9,
		NICBandwidth:  14.0e9,
		AtomicLatency: 1.3e-6,

		// Per-event compute costs. Calibrated so the compute/communication
		// balance reproduces the paper's measured optimization ratios
		// (Fig 8: ~4.7x from aggregating stores; Fig 10: ~3x from exact
		// matching): UPC runtime + memory-system overheads make per-seed
		// work on Edison far heavier than a bare hash would suggest.
		SeedExtractCost: 6e-8,
		HashCost:        8e-8,
		BufferCopyCost:  4e-8,
		InsertCost:      1.5e-7,
		LookupCost:      1.2e-7,
		MemcmpCost:      1.0e-9,
		SWCellCost:      9e-10, // striped SSW throughput, ~1 cell/ns
		SWSetupCost:     1.5e-6,

		FSClientBandwidth: 3.0e8,
		FSPeakBandwidth:   4.8e10, // ~48 GB/s Lustre scratch
		FSOpLatency:       2e-4,

		Seed: 42,
	}
}

// Validate reports configuration errors.
func (c MachineConfig) Validate() error {
	if c.Threads <= 0 {
		return fmt.Errorf("upc: Threads must be positive, got %d", c.Threads)
	}
	if c.PPN <= 0 {
		return fmt.Errorf("upc: PPN must be positive, got %d", c.PPN)
	}
	return nil
}

// Nodes returns the number of nodes the thread count occupies.
func (c MachineConfig) Nodes() int { return (c.Threads + c.PPN - 1) / c.PPN }

// NodeOf returns the node hosting a thread.
func (c MachineConfig) NodeOf(thread int) int { return thread / c.PPN }

// Counters tallies the communication and computation events of one thread.
type Counters struct {
	MsgsRemote  int64 // off-node one-sided operations
	MsgsNode    int64 // on-node (different thread) accesses
	MsgsLocal   int64 // own-partition accesses
	BytesRemote int64
	BytesNode   int64
	Atomics     int64
	SWCells     int64
	SWCalls     int64
	MemcmpBytes int64
	SeedLookups int64
	IOBytes     int64
	IOOps       int64
}

// Sub returns c - o, field-wise — the events that happened between two
// snapshots.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		MsgsRemote:  c.MsgsRemote - o.MsgsRemote,
		MsgsNode:    c.MsgsNode - o.MsgsNode,
		MsgsLocal:   c.MsgsLocal - o.MsgsLocal,
		BytesRemote: c.BytesRemote - o.BytesRemote,
		BytesNode:   c.BytesNode - o.BytesNode,
		Atomics:     c.Atomics - o.Atomics,
		SWCells:     c.SWCells - o.SWCells,
		SWCalls:     c.SWCalls - o.SWCalls,
		MemcmpBytes: c.MemcmpBytes - o.MemcmpBytes,
		SeedLookups: c.SeedLookups - o.SeedLookups,
		IOBytes:     c.IOBytes - o.IOBytes,
		IOOps:       c.IOOps - o.IOOps,
	}
}

// Add accumulates other into c.
func (c *Counters) Add(o Counters) {
	c.MsgsRemote += o.MsgsRemote
	c.MsgsNode += o.MsgsNode
	c.MsgsLocal += o.MsgsLocal
	c.BytesRemote += o.BytesRemote
	c.BytesNode += o.BytesNode
	c.Atomics += o.Atomics
	c.SWCells += o.SWCells
	c.SWCalls += o.SWCalls
	c.MemcmpBytes += o.MemcmpBytes
	c.SeedLookups += o.SeedLookups
	c.IOBytes += o.IOBytes
	c.IOOps += o.IOOps
}

// Thread is one simulated UPC thread. Methods charge the cost model; the
// caller performs the real work against real data structures.
type Thread struct {
	ID   int
	Node int

	// Phase-local virtual clock components (seconds since the last barrier).
	Comp float64
	Comm float64
	IO   float64

	Counters Counters
	Rng      *rand.Rand

	cfg *MachineConfig
}

// Clock returns the thread's virtual time within the current phase.
func (t *Thread) Clock() float64 { return t.Comp + t.Comm + t.IO }

// Compute charges local computation time.
func (t *Thread) Compute(sec float64) { t.Comp += sec }

// chargeAccess charges one one-sided access of n bytes to owner's partition.
func (t *Thread) chargeAccess(owner, n int) {
	switch {
	case owner == t.ID:
		t.Comm += t.cfg.LocalLatency
		t.Counters.MsgsLocal++
	case t.cfg.NodeOf(owner) == t.Node:
		t.Comm += t.cfg.NodeLatency + float64(n)/t.cfg.NICBandwidth
		t.Counters.MsgsNode++
		t.Counters.BytesNode += int64(n)
	default:
		t.Comm += t.cfg.RemoteLatency + float64(n)/t.cfg.LinkBandwidth
		t.Counters.MsgsRemote++
		t.Counters.BytesRemote += int64(n)
	}
}

// Get charges a one-sided read of n bytes from owner's partition.
func (t *Thread) Get(owner, n int) { t.chargeAccess(owner, n) }

// Put charges a one-sided write of n bytes into owner's partition.
func (t *Thread) Put(owner, n int) { t.chargeAccess(owner, n) }

// Atomic charges a global atomic (e.g. atomic_fetchadd) on owner's partition.
func (t *Thread) Atomic(owner int) {
	t.Counters.Atomics++
	if owner == t.ID {
		t.Comm += t.cfg.LocalLatency
		return
	}
	if t.cfg.NodeOf(owner) == t.Node {
		t.Comm += t.cfg.NodeLatency
		return
	}
	t.Comm += t.cfg.AtomicLatency
}

// ReadFile charges a parallel-filesystem read of n bytes.
func (t *Thread) ReadFile(n int) {
	t.IO += t.cfg.FSOpLatency + float64(n)/t.cfg.FSClientBandwidth
	t.Counters.IOBytes += int64(n)
	t.Counters.IOOps++
}

// SameNode reports whether other is on this thread's node.
func (t *Thread) SameNode(other int) bool { return t.cfg.NodeOf(other) == t.Node }

// NewStandaloneThread returns a thread usable outside RunPhase — for unit
// tests and micro-benchmarks that exercise cost-charged code paths directly.
func NewStandaloneThread(cfg MachineConfig, id int) *Thread {
	if cfg.PPN <= 0 {
		cfg.PPN = 1
	}
	return &Thread{
		ID:   id,
		Node: cfg.NodeOf(id),
		Rng:  rand.New(rand.NewSource(cfg.Seed + int64(id)*1_000_003)),
		cfg:  &cfg,
	}
}

// PhaseStat records one bulk-synchronous phase.
type PhaseStat struct {
	Name string
	Wall float64 // max thread clock, NIC- and FS-bounded

	// RealWall is the host wall-clock time the phase took to execute.
	// Meaningful when the machine runs one worker per simulated thread
	// (threaded mode, Fig 11); otherwise it is just simulation overhead.
	RealWall float64

	MaxComp, AvgComp float64
	MinComp          float64
	MaxComm, AvgComm float64
	MaxIO, AvgIO     float64
	MaxClock         float64 // max per-thread total, before NIC/FS bounds
	MinClock         float64
	AvgClock         float64

	NICBound float64 // per-node NIC lower bound on the phase
	FSBound  float64 // filesystem aggregate lower bound

	Counters Counters // summed over threads
}

// RealPhaseStat builds the PhaseStat of a phase that executed for real on
// the host (the threaded engine): Wall and RealWall are both the measured
// wall-clock duration, and the simulated clock components are zero — time
// is observed, not synthesized. Counters still carry the measured event
// totals, exactly as in simulated phases.
func RealPhaseStat(name string, elapsed time.Duration, counters Counters) PhaseStat {
	sec := elapsed.Seconds()
	return PhaseStat{
		Name:     name,
		Wall:     sec,
		RealWall: sec,
		Counters: counters,
	}
}

// Machine is the simulated PGAS machine.
type Machine struct {
	Cfg    MachineConfig
	phases []PhaseStat
	total  Counters
}

// NewMachine validates cfg and returns a machine ready to run phases.
func NewMachine(cfg MachineConfig) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers == 0 {
		cfg.Workers = runtime.NumCPU()
	}
	return &Machine{Cfg: cfg}, nil
}

// MustNewMachine is NewMachine that panics on invalid configuration.
func MustNewMachine(cfg MachineConfig) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// RunPhase executes fn once per simulated thread on a bounded worker pool,
// then barriers: the phase's wall time is the slowest thread's virtual
// clock, lower-bounded by per-node NIC time and filesystem aggregate time.
// It returns the recorded statistics for the phase.
func (m *Machine) RunPhase(name string, fn func(t *Thread)) PhaseStat {
	start := time.Now()
	n := m.Cfg.Threads
	threads := make([]*Thread, n)
	for i := range threads {
		threads[i] = &Thread{
			ID:   i,
			Node: m.Cfg.NodeOf(i),
			Rng:  rand.New(rand.NewSource(m.Cfg.Seed + int64(i)*1_000_003)),
			cfg:  &m.Cfg,
		}
	}

	workers := m.Cfg.Workers
	if workers > n {
		workers = n
	}
	var next int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	nextIdx := func() int {
		mu.Lock()
		defer mu.Unlock()
		i := int(next)
		next++
		return i
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := nextIdx()
				if i >= n {
					return
				}
				fn(threads[i])
			}
		}()
	}
	wg.Wait()

	stat := PhaseStat{Name: name, MinComp: -1, MinClock: -1}
	nodeBytes := make([]int64, m.Cfg.Nodes())
	for _, t := range threads {
		clock := t.Clock()
		stat.MaxClock = max(stat.MaxClock, clock)
		if stat.MinClock < 0 || clock < stat.MinClock {
			stat.MinClock = clock
		}
		stat.AvgClock += clock / float64(n)
		stat.MaxComp = max(stat.MaxComp, t.Comp)
		if stat.MinComp < 0 || t.Comp < stat.MinComp {
			stat.MinComp = t.Comp
		}
		stat.AvgComp += t.Comp / float64(n)
		stat.MaxComm = max(stat.MaxComm, t.Comm)
		stat.AvgComm += t.Comm / float64(n)
		stat.MaxIO = max(stat.MaxIO, t.IO)
		stat.AvgIO += t.IO / float64(n)
		stat.Counters.Add(t.Counters)
		nodeBytes[t.Node] += t.Counters.BytesRemote
	}
	for _, b := range nodeBytes {
		stat.NICBound = max(stat.NICBound, float64(b)/m.Cfg.NICBandwidth)
	}
	if stat.Counters.IOBytes > 0 {
		stat.FSBound = float64(stat.Counters.IOBytes) / m.Cfg.FSPeakBandwidth
	}
	stat.Wall = max(stat.MaxClock, stat.NICBound, stat.FSBound)
	stat.RealWall = time.Since(start).Seconds()

	m.phases = append(m.phases, stat)
	m.total.Add(stat.Counters)
	return stat
}

// Phases returns the statistics of every phase run so far, in order.
func (m *Machine) Phases() []PhaseStat { return m.phases }

// Phase returns the first phase with the given name, or false.
func (m *Machine) Phase(name string) (PhaseStat, bool) {
	for _, p := range m.phases {
		if p.Name == name {
			return p, true
		}
	}
	return PhaseStat{}, false
}

// TotalWall sums the wall times of all phases (the end-to-end runtime).
func (m *Machine) TotalWall() float64 {
	var s float64
	for _, p := range m.phases {
		s += p.Wall
	}
	return s
}

// TotalCounters returns event counts summed over all phases and threads.
func (m *Machine) TotalCounters() Counters { return m.total }

// Summary renders a compact multi-line report of all phases.
func (m *Machine) Summary() string {
	out := fmt.Sprintf("machine: %d threads (%d nodes x %d ppn)\n",
		m.Cfg.Threads, m.Cfg.Nodes(), m.Cfg.PPN)
	for _, p := range m.phases {
		out += fmt.Sprintf("  %-28s wall %10.4fs  comp %10.4fs  comm %10.4fs  io %8.4fs\n",
			p.Name, p.Wall, p.MaxComp, p.MaxComm, p.MaxIO)
	}
	out += fmt.Sprintf("  %-28s wall %10.4fs\n", "TOTAL", m.TotalWall())
	return out
}

// PartitionRange splits count items contiguously over the machine's
// threads and returns the [lo, hi) range owned by thread id — the paper's
// "each processor is assigned a chunk of n/p consecutive queries".
func (c MachineConfig) PartitionRange(count, id int) (lo, hi int) {
	per := count / c.Threads
	rem := count % c.Threads
	lo = id*per + min(id, rem)
	hi = lo + per
	if id < rem {
		hi++
	}
	return lo, hi
}

// Imbalance summarizes a per-thread load distribution: it returns the
// minimum, maximum, and mean. Used to verify Theorem 1's bound in tests and
// to report Table I.
func Imbalance(loads []float64) (minL, maxL, avg float64) {
	if len(loads) == 0 {
		return 0, 0, 0
	}
	s := append([]float64(nil), loads...)
	sort.Float64s(s)
	for _, v := range s {
		avg += v
	}
	return s[0], s[len(s)-1], avg / float64(len(s))
}
