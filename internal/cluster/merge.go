package cluster

import (
	"fmt"
	"strings"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
)

// Merge semantics: one read, N shard verdicts, one deterministic outcome.
//
// Shards hold disjoint target slices of one reference, so their alignment
// lists for a read never overlap; the merged list is the concatenation,
// re-sorted into the canonical output order every server emits
// (client.CanonicalizeAlignments: score desc, then target name, position,
// strand, query interval, cigar). Because a single whole-reference node
// sorts its own output with the same rule, the merged document is
// byte-identical to the single node's — the property the e2e tests pin.
//
// Status merging: too_short wins (every shard has the same K, so one shard
// saying too-short means all did — but one vote suffices and never loses
// data), then ok if any shard aligned the read, else unmapped.

// gather is the merged outcome of one scatter across the fleet, shared by
// every request of a coalesced batch.
type gather struct {
	results []client.ReadResult
	// degraded names the shards (addresses, in shard order) whose results
	// are missing — non-empty only under the partial policy.
	degraded []string
	// calls records each shard RPC of the scatter (shard order) so member
	// request traces can replay them as rpc spans.
	calls []rpcCall
	// carrier is the trace ID the scatter propagated to the shards — the
	// member's own trace for an uncoalesced call, a fresh carrier trace
	// when several requests shared the scatter. Recorded as Link on rpc
	// spans so shard-side logs can be joined from a member trace.
	carrier string
}

// rpcCall is one shard RPC's timing within a scatter.
type rpcCall struct {
	shard    int
	replica  int
	addr     string
	start    time.Time
	dur      time.Duration
	attempts int
	err      error
	hedged   bool
}

// ShardFailure is one shard's terminal failure during a scatter (its
// retries exhausted).
type ShardFailure struct {
	ID   int
	Addr string
	Err  error
}

// ShardError reports the shards a scatter lost. Under the fail policy any
// loss surfaces as this error (HTTP 502); under the partial policy it
// surfaces only when every shard failed.
type ShardError struct {
	Failed []ShardFailure
}

// Error names every failed shard and its reason.
func (e *ShardError) Error() string {
	parts := make([]string, len(e.Failed))
	for i, f := range e.Failed {
		parts[i] = fmt.Sprintf("shard %d (%s): %v", f.ID, f.Addr, f.Err)
	}
	return "cluster: shard(s) unavailable: " + strings.Join(parts, "; ")
}

// mergeResults folds per-shard responses into per-read results. per is in
// shard order; a nil entry is a shard excluded by the partial policy. Every
// included response must cover exactly the request's reads — a shard
// answering for a different batch shape is a protocol violation the caller
// screens out before merging.
func mergeResults(reads []meraligner.Seq, per []*client.AlignResponse) []client.ReadResult {
	out := make([]client.ReadResult, len(reads))
	for i := range reads {
		out[i] = client.ReadResult{Name: reads[i].Name, Status: client.StatusUnmapped}
	}
	for _, resp := range per {
		if resp == nil {
			continue
		}
		for i := range resp.Reads {
			rr := &resp.Reads[i]
			if rr.Status == client.StatusTooShort {
				out[i].Status = client.StatusTooShort
			}
			out[i].Alignments = append(out[i].Alignments, rr.Alignments...)
		}
	}
	for i := range out {
		client.CanonicalizeAlignments(out[i].Alignments)
		if len(out[i].Alignments) > 0 && out[i].Status != client.StatusTooShort {
			out[i].Status = client.StatusOK
		}
	}
	return out
}
