// Package cluster implements merrouted: the stateless scatter/gather tier
// that serves one reference too big (or too hot) for one machine. The
// reference is partitioned ahead of time into N self-contained shard
// snapshots (`meraligner -shard-save`, SaveShards); each shard is served by
// an ordinary merserved; a Router fans every align request to all shards
// over the existing /v1/align wire protocol, merges the per-read results
// deterministically, and answers with output byte-identical to a single
// whole-reference node — JSON and SAM both. Clients cannot tell the
// difference, which is the point: sharding is an operational decision, not
// an API change.
//
// Identity rests on three legs, each owned elsewhere and composed here:
// shards keep global target names and per-target coordinates (no rebasing),
// every server canonicalizes each read's alignments with one shared rule
// (client.CanonicalizeAlignments), and shard responses carry the
// server-computed NM so SAM records render without target bases. The
// router's own jobs are the global header (assembled from the shards'
// GET /v1/targets catalogs at warmup), the merge (merge.go), and the
// replicated admission check, so a rejected request gets the same 400 body
// a single node would send.
//
// Endpoints mirror a single-index merserved:
//
//	POST /v1/align   scatter, gather, merge (JSON, or SAM via Accept)
//	GET  /v1/stats   RouterStats: request counters plus per-shard health
//	GET  /v1/targets the assembled global reference catalog
//	GET  /healthz    200 serving, 503 draining
//	GET  /readyz     503 until the fleet catalog is assembled and validated
//	GET  /metrics    merrouted_* and merrouted_shard_* exposition
//
// Failure policy: each shard may be served by a replica set ("a1|a2" in
// Config.Shards), and a scatter sends the shard's RPC to one healthy
// replica — power-of-two-choices on in-flight count among the best
// circuit-breaker class — failing over to the next replica on error and
// optionally hedging a slow attempt against a second replica (see
// replica.go). Every attempt gets a per-call timeout and bounded,
// jittered, Retry-After-honoring retries (client.RetryPolicy). A shard
// whose replicas all fail either fails the request (502, policy "fail" —
// the default: silently missing alignments are corruption in a pipeline)
// or is dropped from a partial response that says so in-band (policy
// "partial": degraded_shards in JSON, an @CO line in SAM, and a counted
// metric).
package cluster

import (
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/service"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// Degraded policies: what a Router serves when a shard stays down after
// retries.
const (
	// DegradedFail fails the whole request with 502 naming the lost shards.
	DegradedFail = "fail"
	// DegradedPartial serves the surviving shards' results, annotated
	// in-band (degraded_shards / @CO) and counted. All shards failing still
	// fails the request — an all-unmapped lie is never served.
	DegradedPartial = "partial"
)

// Config shapes one Router. Shards is required; everything else defaults.
type Config struct {
	// Shards lists the fleet's base URLs (e.g. "http://host:8490") in shard
	// order — the order must match the shards' SHRD identities, and the
	// warmup validation refuses a misordered or incomplete fleet. Each
	// element may name several interchangeable replicas of the shard,
	// separated by "|" ("http://h1:8490|http://h2:8490"): the router picks
	// a healthy replica per RPC and the shard is down only when all its
	// replicas are.
	Shards []string

	// Degraded selects the shard-failure policy: DegradedFail (default) or
	// DegradedPartial.
	Degraded string

	// Retry bounds the per-shard RPC retries (client.RetryPolicy semantics:
	// capped jittered exponential backoff, Retry-After honored). Zero-valued
	// fields default; MaxAttempts <= 0 means DefaultRetryPolicy's.
	Retry client.RetryPolicy

	// CallTimeout caps one RPC attempt to one shard. Default 15s; it becomes
	// Retry.AttemptTimeout unless that is already set.
	CallTimeout time.Duration

	// Micro-batcher knobs, as in service.Config: MaxBatch caps reads per
	// scatter (default 256; requests at least that big skip the queue),
	// MaxWait caps queue-holding behind a busy fleet (default 2ms; negative
	// disables), QueueReads bounds admission (default 4*MaxBatch).
	MaxBatch   int
	MaxWait    time.Duration
	QueueReads int

	// RetryAfter is the backoff hint sent with 429s and warming 503s.
	// Default 500ms.
	RetryAfter time.Duration

	// MaxRequestBytes bounds a request body. Default 64 MiB.
	MaxRequestBytes int64

	// HealthInterval paces the per-replica /readyz probes. Default 2s.
	// Probes gate traffic: they feed the merrouted_replica_up gauge, bias
	// replica selection toward probed-up replicas, and walk an open
	// circuit breaker back into rotation (open → half-open → closed).
	HealthInterval time.Duration

	// BreakerThreshold is the consecutive-failure count that opens one
	// replica's circuit breaker, taking it out of selection until its
	// readiness probes recover. Default 3; negative disables breakers.
	BreakerThreshold int

	// HedgeAfter, when positive, arms hedged requests: a shard RPC that
	// has not answered after this long is raced against a second replica,
	// the first response wins, and the loser is canceled. Hedges are
	// capped by an adaptive budget (~10% of shard RPCs) so a slow fleet
	// is not doubled over. Zero disables hedging.
	HedgeAfter time.Duration

	// MinDeadline, when > 0, enables deadline admission: an align request
	// whose propagated X-Deadline-Ms budget is below it is rejected with
	// 503 instead of scattering work the caller will have abandoned.
	MinDeadline time.Duration

	// Version is reported in /v1/stats (ldflags-injected by cmd/merrouted).
	Version string

	// HTTPClient overrides the shard clients' *http.Client (transport
	// limits, test doubles).
	HTTPClient *http.Client

	// Logger receives the router's structured logs (request completions at
	// debug, slow requests at warn, shard health transitions). Nil discards.
	Logger *slog.Logger

	// SlowRequest, when positive, logs a full span trace at warn level for
	// any request that takes at least this long.
	SlowRequest time.Duration

	// TraceCapacity bounds the /debug/requests ring of completed request
	// traces. Zero means telemetry.DefaultRingCapacity.
	TraceCapacity int
}

func (c Config) withDefaults() Config {
	if c.Degraded == "" {
		c.Degraded = DegradedFail
	}
	if c.CallTimeout <= 0 {
		c.CallTimeout = 15 * time.Second
	}
	if c.Retry.MaxAttempts <= 0 {
		c.Retry = client.DefaultRetryPolicy()
	}
	if c.Retry.AttemptTimeout <= 0 {
		c.Retry.AttemptTimeout = c.CallTimeout
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	switch {
	case c.MaxWait == 0:
		c.MaxWait = 2 * time.Millisecond
	case c.MaxWait < 0:
		c.MaxWait = 0
	}
	if c.QueueReads <= 0 {
		c.QueueReads = 4 * c.MaxBatch
	}
	if c.QueueReads < c.MaxBatch {
		c.QueueReads = c.MaxBatch
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = 500 * time.Millisecond
	}
	if c.MaxRequestBytes <= 0 {
		c.MaxRequestBytes = 64 << 20
	}
	if c.HealthInterval <= 0 {
		c.HealthInterval = 2 * time.Second
	}
	if c.BreakerThreshold == 0 {
		c.BreakerThreshold = 3
	}
	return c
}

// fleetCatalog is the assembled global reference view: the shards'
// catalogs concatenated in shard order.
type fleetCatalog struct {
	k       int
	refs    []seqio.SAMRef      // SAM @SQ material
	targets []client.TargetInfo // GET /v1/targets body
}

// Router is the scatter/gather HTTP tier. Create with New, serve with
// net/http, stop with Drain (graceful) or Close (hard).
type Router struct {
	cfg    Config
	mux    *http.ServeMux
	coal   *coalescer
	st     *routerStats
	logger *slog.Logger
	ring   *telemetry.Ring

	sets []*shardSet

	cat      atomic.Pointer[fleetCatalog]
	warmNote atomic.Pointer[string] // last warmup failure, surfaced by /readyz
	draining atomic.Bool

	baseCtx context.Context
	cancel  context.CancelFunc
	bg      sync.WaitGroup // warmup + health probes
}

// New builds a Router over cfg.Shards and starts its warmup (assembling and
// validating the fleet catalog, retrying until it succeeds or the Router is
// closed) and per-shard health probes. The Router answers 503 warming until
// warmup completes; Ready reports the transition.
func New(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, errors.New("cluster: at least one shard address is required")
	}
	switch cfg.Degraded {
	case "", DegradedFail, DegradedPartial:
	default:
		return nil, fmt.Errorf("cluster: unknown degraded policy %q (want %q or %q)", cfg.Degraded, DegradedFail, DegradedPartial)
	}
	cfg = cfg.withDefaults()
	rt := &Router{cfg: cfg, st: newRouterStats()}
	rt.logger = cfg.Logger
	if rt.logger == nil {
		rt.logger = slog.New(slog.DiscardHandler)
	}
	rt.ring = telemetry.NewRing(cfg.TraceCapacity)
	rt.baseCtx, rt.cancel = context.WithCancel(context.Background())
	opts := []client.Option{}
	if cfg.HTTPClient != nil {
		opts = append(opts, client.WithHTTPClient(cfg.HTTPClient))
	}
	for i, spec := range cfg.Shards {
		ss := &shardSet{id: i}
		for _, addr := range strings.Split(spec, "|") {
			if addr = strings.TrimSpace(addr); addr == "" {
				continue
			}
			ss.replicas = append(ss.replicas, &replica{
				shard: i, idx: len(ss.replicas), addr: addr, cl: client.New(addr, opts...),
			})
		}
		if len(ss.replicas) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no replica addresses", i)
		}
		rt.sets = append(rt.sets, ss)
	}
	rt.coal = newCoalescer(rt.baseCtx, rt.scatter, cfg.MaxBatch, cfg.MaxWait, cfg.QueueReads, rt.st)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/align", rt.traced(rt.handleAlign))
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /v1/targets", rt.handleTargets)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux = mux

	rt.bg.Add(1)
	go rt.warm()
	for _, ss := range rt.sets {
		for _, rep := range ss.replicas {
			rt.bg.Add(1)
			go rt.health(rep)
		}
	}
	return rt, nil
}

// ServeHTTP implements http.Handler.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) { rt.mux.ServeHTTP(w, r) }

// TraceRing exposes the ring of completed request traces for a debug
// listener (telemetry.NewDebugMux).
func (rt *Router) TraceRing() *telemetry.Ring { return rt.ring }

// traced wraps an align handler with request tracing: extract or mint the
// span context, echo X-Request-Id, record the trace into the debug ring,
// and log the completion (warn with the full span summary when the request
// was slower than cfg.SlowRequest).
func (rt *Router) traced(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sc, _ := telemetry.Extract(r.Header)
		tr := telemetry.NewTrace(sc, r.URL.Path)
		w.Header().Set(telemetry.HeaderRequestID, sc.RequestID())
		sw := &telemetry.StatusRecorder{ResponseWriter: w, Code: http.StatusOK}
		aborted := true
		defer func() { rt.finishTrace(tr, sw, aborted) }()
		h(sw, r.WithContext(telemetry.WithTrace(r.Context(), tr)))
		aborted = false
	}
}

func (rt *Router) finishTrace(tr *telemetry.Trace, sw *telemetry.StatusRecorder, aborted bool) {
	rec := tr.Finish(sw.Code)
	rt.ring.Add(rec)
	attrs := []any{
		"request_id", rec.RequestID,
		"path", rec.Path,
		"status", rec.Status,
		"reads", rec.Reads,
		"duration_ms", float64(rec.DurationUs) / 1e3,
	}
	if aborted {
		attrs = append(attrs, "aborted", true)
	}
	if rt.cfg.SlowRequest > 0 && time.Duration(rec.DurationUs)*time.Microsecond >= rt.cfg.SlowRequest {
		attrs = append(attrs, "spans", rec.SpanSummary())
		rt.logger.Warn("slow request", attrs...)
		return
	}
	rt.logger.Debug("request", attrs...)
}

// Ready reports whether the fleet catalog has been assembled and validated
// (the /readyz condition, minus draining).
func (rt *Router) Ready() bool { return rt.cat.Load() != nil }

// Draining reports whether Drain or Close has started.
func (rt *Router) Draining() bool { return rt.draining.Load() }

// Drain gracefully stops the Router: admission closes (new requests answer
// 503), queued requests still scatter and complete, then the background
// probes stop. When ctx expires first, in-flight scatters are aborted and
// ctx's error is returned.
func (rt *Router) Drain(ctx context.Context) error {
	rt.draining.Store(true)
	err := rt.coal.drain(ctx)
	rt.cancel()
	rt.bg.Wait()
	return err
}

// Close hard-stops: cancels in-flight scatters and the background probes.
func (rt *Router) Close() {
	rt.draining.Store(true)
	rt.cancel()
	rt.coal.closeNow()
	rt.bg.Wait()
}

// warm assembles the fleet catalog, retrying until it validates or the
// Router is closed. A fleet that is still starting up (shards answering 503
// warming) simply keeps the Router not-ready; a fleet that validates
// inconsistently (mixed K, wrong shard order) also keeps it not-ready, with
// the reason surfaced by /readyz — misconfiguration is loud, not wrong.
func (rt *Router) warm() {
	defer rt.bg.Done()
	for {
		cat, err := rt.assembleCatalog(rt.baseCtx)
		if err == nil {
			rt.cat.Store(cat)
			rt.logger.Info("fleet catalog assembled",
				"shards", len(rt.sets), "k", cat.k, "targets", len(cat.targets))
			return
		}
		msg := err.Error()
		rt.warmNote.Store(&msg)
		select {
		case <-rt.baseCtx.Done():
			return
		case <-time.After(500 * time.Millisecond):
		}
	}
}

// assembleCatalog fetches every shard's catalog and validates the fleet:
// one K everywhere, every replica of a shard serving the same slice, and —
// when shard snapshots carry their SHRD identity — each shard in its
// configured position, the full fleet present, and the global target
// offsets consistent with the concatenation order.
func (rt *Router) assembleCatalog(ctx context.Context) (*fleetCatalog, error) {
	resps := make([]*client.TargetsResponse, len(rt.sets))
	errs := make([]error, len(rt.sets))
	var wg sync.WaitGroup
	for i, ss := range rt.sets {
		wg.Add(1)
		go func(i int, ss *shardSet) {
			defer wg.Done()
			resps[i], errs[i] = ss.targets(ctx, rt.cfg.Retry)
			if errs[i] == nil && len(ss.replicas) > 1 {
				errs[i] = ss.validateReplicas(ctx, rt.cfg.Retry, resps[i])
			}
		}(i, ss)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("shard %d (%s): fetching targets: %w", i, rt.sets[i].addrs(), err)
		}
	}
	cat := &fleetCatalog{k: resps[0].K}
	targetBase := 0
	for i, resp := range resps {
		if resp.K != cat.k {
			return nil, fmt.Errorf("shard %d (%s): seed length K=%d, shard 0 has K=%d — mixed-K fleet", i, rt.sets[i].addrs(), resp.K, cat.k)
		}
		if meta := resp.Shard; meta != nil {
			if meta.ID != i {
				return nil, fmt.Errorf("shard %d (%s): snapshot says shard id %d — fleet out of order", i, rt.sets[i].addrs(), meta.ID)
			}
			if meta.Count != len(rt.sets) {
				return nil, fmt.Errorf("shard %d (%s): snapshot says %d shards, router has %d", i, rt.sets[i].addrs(), meta.Count, len(rt.sets))
			}
			if meta.TargetBase != targetBase {
				return nil, fmt.Errorf("shard %d (%s): snapshot says target base %d, concatenation expects %d", i, rt.sets[i].addrs(), meta.TargetBase, targetBase)
			}
		}
		for _, t := range resp.Targets {
			cat.refs = append(cat.refs, seqio.SAMRef{Name: t.Name, Len: t.Length})
			cat.targets = append(cat.targets, t)
		}
		targetBase += len(resp.Targets)
	}
	return cat, nil
}

// validateReplicas checks that every reachable replica of the set serves
// the same catalog as want: replicas are interchangeable by contract, and
// a replica holding the wrong slice would silently corrupt merges after a
// failover. Unreachable replicas pass — they may still be starting, and
// the breaker keeps traffic away until they prove themselves.
func (ss *shardSet) validateReplicas(ctx context.Context, pol client.RetryPolicy, want *client.TargetsResponse) error {
	for _, rep := range ss.replicas {
		var got *client.TargetsResponse
		err := pol.Do(ctx, func(actx context.Context) error {
			r, rerr := rep.cl.Targets(actx)
			if rerr != nil {
				return rerr
			}
			got = r
			return nil
		})
		if err != nil {
			continue
		}
		if got.K != want.K || len(got.Targets) != len(want.Targets) {
			return fmt.Errorf("replica %d (%s): serves K=%d with %d targets, set expects K=%d with %d — replicas of one shard must serve the same snapshot",
				rep.idx, rep.addr, got.K, len(got.Targets), want.K, len(want.Targets))
		}
		for j := range got.Targets {
			if got.Targets[j] != want.Targets[j] {
				return fmt.Errorf("replica %d (%s): target %d is %q (len %d), set expects %q (len %d) — replicas of one shard must serve the same snapshot",
					rep.idx, rep.addr, j, got.Targets[j].Name, got.Targets[j].Length, want.Targets[j].Name, want.Targets[j].Length)
			}
		}
	}
	return nil
}

// health is one replica's readiness probe loop. Probes gate traffic: they
// bias selection (class) and walk the replica's circuit breaker back from
// open through half-open to closed.
func (rt *Router) health(rep *replica) {
	defer rt.bg.Done()
	probe := func() {
		ctx, cancel := context.WithTimeout(rt.baseCtx, rt.cfg.HealthInterval)
		rep.noteProbe(rep.cl.Ready(ctx) == nil, rt.logger)
		cancel()
	}
	probe()
	tick := time.NewTicker(rt.cfg.HealthInterval)
	defer tick.Stop()
	for {
		select {
		case <-rt.baseCtx.Done():
			return
		case <-tick.C:
			probe()
		}
	}
}

// scatter is the coalescer's fleet call: fan the batch to one replica of
// every shard (with failover and hedging inside alignSet), apply the
// degraded policy, merge.
func (rt *Router) scatter(ctx context.Context, reads []meraligner.Seq) (*gather, error) {
	req := client.AlignRequest{Reads: client.FromSeqs(reads)}
	resps := make([]*client.AlignResponse, len(rt.sets))
	errs := make([]error, len(rt.sets))
	callLists := make([][]rpcCall, len(rt.sets))
	var wg sync.WaitGroup
	for i, ss := range rt.sets {
		wg.Add(1)
		go func(i int, ss *shardSet) {
			defer wg.Done()
			resps[i], callLists[i], errs[i] = rt.alignSet(ctx, ss, req, len(reads))
		}(i, ss)
	}
	wg.Wait()
	var failed []ShardFailure
	for i, err := range errs {
		if err != nil {
			failed = append(failed, ShardFailure{ID: i, Addr: rt.sets[i].addrs(), Err: err})
		}
	}
	var degraded []string
	if len(failed) > 0 {
		if rt.cfg.Degraded != DegradedPartial || len(failed) == len(rt.sets) {
			return nil, &ShardError{Failed: failed}
		}
		for _, f := range failed {
			degraded = append(degraded, f.Addr)
		}
	}
	var calls []rpcCall
	for _, cl := range callLists {
		calls = append(calls, cl...)
	}
	g := &gather{results: mergeResults(reads, resps), degraded: degraded, calls: calls}
	if sc, ok := telemetry.SpanContextFrom(ctx); ok {
		g.carrier = sc.RequestID()
	}
	return g, nil
}

// serve is the request-serving core: big requests scatter directly with the
// caller's context, small ones ride the coalescer; accounting matches the
// single node's (requests/reads count served work only).
func (rt *Router) serve(ctx context.Context, reads []meraligner.Seq) (*cwindow, error) {
	start := time.Now()
	var win *cwindow
	if len(reads) >= rt.cfg.MaxBatch {
		rt.coal.enterDirect()
		g, err := rt.scatter(ctx, reads)
		finished := time.Now()
		rt.coal.exitDirect()
		if err != nil {
			return nil, err
		}
		rt.st.observeBatch(1, len(reads))
		win = &cwindow{g: g, lo: 0, hi: len(reads), enq: start, disp: start, done: finished, requests: 1}
	} else {
		var err error
		if win, err = rt.coal.submit(ctx, reads); err != nil {
			return nil, err
		}
	}
	rt.st.requests.Add(1)
	rt.st.reads.Add(int64(len(reads)))
	rt.st.reqLatency.Observe(time.Since(start).Nanoseconds())
	return win, nil
}

// admit replicates the single node's admission check byte-for-byte (same
// messages, same typed detail), using the fleet catalog's K.
func (rt *Router) admit(k int, reads []meraligner.Seq) *client.ErrorResponse {
	if len(reads) == 0 {
		return &client.ErrorResponse{Error: "empty request: no reads"}
	}
	var short []string
	for i := range reads {
		if reads[i].Seq.Len() < k {
			short = append(short, reads[i].Name)
		}
	}
	if short != nil {
		rt.st.tooShort.Add(int64(len(short)))
		return &client.ErrorResponse{
			Error:    fmt.Sprintf("%d read(s) shorter than the seed length K=%d cannot be aligned", len(short), k),
			TooShort: short,
		}
	}
	return nil
}

// ---- HTTP handlers ----

func (rt *Router) handleAlign(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		rt.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
		return
	}
	cat := rt.cat.Load()
	if cat == nil {
		rt.warming(w, r)
		return
	}
	tr := telemetry.TraceFrom(r.Context())
	admitStart := time.Now()
	if budget, ok := client.DeadlineFromHeader(r.Header); ok {
		// Deadline admission, mirroring merserved's: refuse work the caller
		// will have abandoned, and bound accepted scatters by the budget so
		// the shard RPCs inherit (and re-propagate) the remaining time.
		if rt.cfg.MinDeadline > 0 && budget < rt.cfg.MinDeadline {
			rt.st.deadlineRejected.Add(1)
			w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryAfter))
			rt.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{
				Error: fmt.Sprintf("deadline budget %s below the %s admission floor: rejecting doomed work", budget, rt.cfg.MinDeadline)})
			return
		}
		if budget > 0 {
			ctx, cancel := context.WithTimeout(r.Context(), budget)
			defer cancel()
			r = r.WithContext(ctx)
		}
	}
	reads, err := service.ParseReads(w, r, rt.cfg.MaxRequestBytes)
	if err != nil {
		rt.writeError(w, r, service.ParseStatus(err), &client.ErrorResponse{Error: err.Error()})
		return
	}
	if er := rt.admit(cat.k, reads); er != nil {
		rt.writeError(w, r, http.StatusBadRequest, er)
		return
	}
	if tr != nil {
		tr.Add("admission", admitStart, time.Since(admitStart), func(sp *telemetry.Span) { sp.Reads = len(reads) })
		tr.AddReads(len(reads))
	}
	win, err := rt.serve(r.Context(), reads)
	if err != nil {
		rt.routerError(w, r, err)
		return
	}
	win.record(tr)
	results := win.g.results[win.lo:win.hi]
	degraded := win.g.degraded
	if len(degraded) > 0 {
		rt.st.degradedServed.Add(1)
	}
	renderStart := time.Now()
	if wantsSAM(r) {
		w.Header().Set("Content-Type", "text/x-sam")
		body, finish := rt.maybeGzip(w, r)
		var comments []string
		if len(degraded) > 0 {
			comments = append(comments, degradedComment(degraded))
		}
		if werr := writeSAM(body, cat.refs, reads, results, comments); werr == nil {
			_ = finish()
		}
	} else {
		rt.writeJSON(w, r, http.StatusOK, &client.AlignResponse{Reads: results, DegradedShards: degraded})
	}
	if tr != nil {
		tr.Add("render", renderStart, time.Since(renderStart), nil)
	}
}

// degradedComment is the @CO annotation of a partial SAM response.
func degradedComment(degraded []string) string {
	return "degraded: results missing from shard(s) " + strings.Join(degraded, ", ")
}

// routerError maps serving failures onto HTTP statuses, mirroring the
// single node's engineError for the shared cases.
func (rt *Router) routerError(w http.ResponseWriter, r *http.Request, err error) {
	var se *ShardError
	switch {
	case errors.Is(err, errOverloaded):
		rt.st.rejected.Add(1)
		w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryAfter))
		rt.writeError(w, r, http.StatusTooManyRequests, &client.ErrorResponse{Error: "overloaded: admission queue full"})
	case errors.Is(err, errDraining):
		rt.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: "draining"})
	case errors.As(err, &se):
		rt.st.failedRequests.Add(1)
		rt.writeError(w, r, http.StatusBadGateway, &client.ErrorResponse{Error: se.Error()})
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		// Client is gone; nothing useful to write.
	default:
		rt.writeError(w, r, http.StatusInternalServerError, &client.ErrorResponse{Error: err.Error()})
	}
}

// warming answers 503 with a Retry-After while the fleet catalog is not yet
// assembled.
func (rt *Router) warming(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Retry-After", retryAfterSeconds(rt.cfg.RetryAfter))
	msg := "warming: fleet catalog not ready"
	if note := rt.warmNote.Load(); note != nil {
		msg = "warming: " + *note
	}
	rt.writeError(w, r, http.StatusServiceUnavailable, &client.ErrorResponse{Error: msg})
}

// Stats renders the live RouterStats document (the /v1/stats body), also
// available in-process for embedders and benchmarks.
func (rt *Router) Stats() client.RouterStats {
	st := rt.st.snapshot()
	st.Version = rt.cfg.Version
	st.Draining = rt.draining.Load()
	st.Degraded = rt.cfg.Degraded
	st.QueueReads = int64(rt.coal.queuedReads())
	if cat := rt.cat.Load(); cat != nil {
		st.Ready = true
		st.K = cat.k
	}
	st.Shards = make([]client.ShardStatus, len(rt.sets))
	for i, ss := range rt.sets {
		st.Shards[i] = ss.status()
	}
	return st
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.writeJSON(w, r, http.StatusOK, rt.Stats())
}

func (rt *Router) handleTargets(w http.ResponseWriter, r *http.Request) {
	cat := rt.cat.Load()
	if cat == nil {
		rt.warming(w, r)
		return
	}
	rt.writeJSON(w, r, http.StatusOK, &client.TargetsResponse{K: cat.k, Targets: cat.targets})
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if rt.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
		return
	}
	io.WriteString(w, "ok\n")
}

func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	switch {
	case rt.draining.Load():
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, "draining\n")
	case rt.cat.Load() == nil:
		w.WriteHeader(http.StatusServiceUnavailable)
		msg := "warming\n"
		if note := rt.warmNote.Load(); note != nil {
			msg = "warming: " + *note + "\n"
		}
		io.WriteString(w, msg)
	default:
		io.WriteString(w, "ready\n")
	}
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	body, finish := rt.maybeGzip(w, r)
	shardLat := make([]telemetry.HistSnapshot, len(rt.sets))
	for i, ss := range rt.sets {
		shardLat[i] = ss.lat.Snapshot()
	}
	writeMetrics(body, rt.Stats(), rt.st.reqLatency.Snapshot(), shardLat)
	_ = finish()
}

// ---- response plumbing (mirrors internal/service's) ----

func (rt *Router) maybeGzip(w http.ResponseWriter, r *http.Request) (io.Writer, func() error) {
	if !strings.Contains(r.Header.Get("Accept-Encoding"), "gzip") {
		return w, func() error { return nil }
	}
	w.Header().Set("Content-Encoding", "gzip")
	w.Header().Add("Vary", "Accept-Encoding")
	gz := gzip.NewWriter(w)
	return gz, gz.Close
}

func (rt *Router) writeJSON(w http.ResponseWriter, r *http.Request, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	body, finish := rt.maybeGzip(w, r)
	if code != http.StatusOK {
		w.WriteHeader(code)
	}
	_ = json.NewEncoder(body).Encode(v)
	_ = finish()
}

func (rt *Router) writeError(w http.ResponseWriter, r *http.Request, code int, er *client.ErrorResponse) {
	if tr := telemetry.TraceFrom(r.Context()); tr != nil && er.RequestID == "" {
		er.RequestID = tr.RequestID()
	}
	rt.writeJSON(w, r, code, er)
}

func retryAfterSeconds(d time.Duration) string {
	return strconv.Itoa(int((d + time.Second - 1) / time.Second))
}

// wantsSAM reports whether the request asked for SAM output.
func wantsSAM(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "sam")
}
