package cluster

import (
	"context"
	"errors"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// The router's micro-batcher: the same continuous coalescing scheme as
// internal/service's batcher, pointed at the fleet instead of a local
// engine. Concurrent single-read requests glue into shared scatters, so the
// per-scatter cost — one HTTP round-trip per shard — is paid once per
// batching window instead of once per request. The structure mirrors
// service/batcher.go deliberately (dispatcher loop, batching window,
// admission bound, group context); what it drops is the refcounting, which
// existed to pin mapped index memory during rendering — a gather is plain
// heap data, so member windows just hold a pointer.

// Sentinel errors the handlers translate to HTTP statuses (same statuses as
// the single node: 429 + Retry-After, 503 draining).
var (
	errOverloaded = errors.New("cluster: admission queue full")
	errDraining   = errors.New("cluster: draining")
)

// scatterFunc runs one coalesced scatter across the fleet and returns the
// merged outcome.
type scatterFunc func(ctx context.Context, reads []meraligner.Seq) (*gather, error)

// cwindow is one request's view of a coalesced scatter: the shared merged
// gather plus this request's read range within it, and the timing needed
// to replay the scatter into the request's trace.
type cwindow struct {
	g  *gather
	lo int
	hi int

	enq      time.Time // when this request entered the queue
	disp     time.Time // when its scatter dispatched
	done     time.Time // when the scatter finished
	requests int       // member requests sharing the scatter
}

// record replays the window into a request trace: the queue wait as a
// batch_wait span, then one rpc span per shard call of the scatter (with
// the carrier trace ID as Link, so shard-side logs can be joined).
func (w *cwindow) record(tr *telemetry.Trace) {
	if tr == nil || w.disp.IsZero() {
		return
	}
	tr.Add("batch_wait", w.enq, w.disp.Sub(w.enq), func(sp *telemetry.Span) {
		sp.Requests = w.requests
		sp.Reads = w.hi - w.lo
	})
	for i := range w.g.calls {
		c := &w.g.calls[i]
		tr.Add("rpc", c.start, c.dur, func(sp *telemetry.Span) {
			sp.Shard = strconv.Itoa(c.shard)
			sp.Replica = strconv.Itoa(c.replica)
			sp.Addr = c.addr
			sp.Retries = c.attempts - 1
			sp.Hedged = c.hedged
			sp.Link = w.g.carrier
			if c.err != nil {
				sp.Status = "error"
				sp.Error = c.err.Error()
			}
		})
	}
}

// cpending is one queued request.
type cpending struct {
	ctx   context.Context
	reads []meraligner.Seq
	enq   time.Time
	win   *cwindow
	err   error
	done  chan struct{}
}

// coalescerStats are the coalescer's observation hooks.
type coalescerStats interface {
	observeBatch(requests, reads int)
	observeCanceled()
}

type coalescer struct {
	scatter  scatterFunc
	maxBatch int
	maxWait  time.Duration
	capacity int // admission bound on queued reads
	base     context.Context
	st       coalescerStats

	mu       sync.Mutex
	cond     *sync.Cond // broadcast on queue/inflight transitions
	queue    []*cpending
	queued   int // reads queued
	inflight int // scatters running
	closed   bool

	wake    chan struct{} // 1-buffered dispatcher kick
	stopped chan struct{} // dispatcher exited
}

func newCoalescer(base context.Context, scatter scatterFunc, maxBatch int, maxWait time.Duration, capacity int, st coalescerStats) *coalescer {
	c := &coalescer{
		scatter:  scatter,
		maxBatch: maxBatch,
		maxWait:  maxWait,
		capacity: capacity,
		base:     base,
		st:       st,
		wake:     make(chan struct{}, 1),
		stopped:  make(chan struct{}),
	}
	c.cond = sync.NewCond(&c.mu)
	go c.run()
	return c
}

// queuedReads reports the reads currently waiting (for stats).
func (c *coalescer) queuedReads() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.queued
}

// isClosed reports whether drain has started.
func (c *coalescer) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

// enterDirect/exitDirect bracket a scatter the coalescer did not dispatch
// (the big-request direct path): the shared inflight count lets queued
// small requests coalesce behind a big direct scatter, and makes drain wait
// for direct scatters too.
func (c *coalescer) enterDirect() {
	c.mu.Lock()
	c.inflight++
	c.mu.Unlock()
}

func (c *coalescer) exitDirect() {
	c.mu.Lock()
	c.inflight--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.kick()
}

// submit enqueues one request's reads and blocks until its scatter
// completes or ctx is done.
func (c *coalescer) submit(ctx context.Context, reads []meraligner.Seq) (*cwindow, error) {
	p := &cpending{ctx: ctx, reads: reads, enq: time.Now(), done: make(chan struct{})}
	c.mu.Lock()
	switch {
	case c.closed:
		c.mu.Unlock()
		return nil, errDraining
	case c.queued+len(reads) > c.capacity:
		c.mu.Unlock()
		return nil, errOverloaded
	}
	c.queue = append(c.queue, p)
	c.queued += len(reads)
	c.mu.Unlock()
	c.kick()

	select {
	case <-p.done:
		return p.win, p.err
	case <-ctx.Done():
		// The dispatcher observes the dead ctx at take or demux time and
		// discards this request's share; batchmates are unaffected. No
		// cleanup needed here — a gather holds no pinned resources.
		return nil, ctx.Err()
	}
}

// kick nudges the dispatcher without blocking.
func (c *coalescer) kick() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// closeNow stops admission without waiting; the dispatcher flushes any
// remaining queue and exits. Safe to call more than once.
func (c *coalescer) closeNow() {
	c.mu.Lock()
	c.closed = true
	c.mu.Unlock()
	c.kick()
}

// drain stops admission and flushes: queued requests still execute, then
// in-flight scatters finish. Returns when empty or ctx expires.
func (c *coalescer) drain(ctx context.Context) error {
	c.closeNow()

	idle := make(chan struct{})
	go func() {
		c.mu.Lock()
		for len(c.queue) > 0 || c.inflight > 0 {
			c.cond.Wait()
		}
		c.mu.Unlock()
		close(idle)
	}()
	select {
	case <-idle:
		<-c.stopped
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// run is the dispatcher: one goroutine owning batch formation; executions
// are spawned so arrivals accumulate while a scatter is in flight.
func (c *coalescer) run() {
	defer close(c.stopped)
	for {
		if !c.waitForWork() {
			return
		}
		c.waitWindow()
		batch, reads := c.take()
		if len(batch) > 0 {
			go c.execute(batch, reads)
		}
	}
}

// waitForWork blocks until the queue is nonempty; false means closed with
// an empty queue.
func (c *coalescer) waitForWork() bool {
	for {
		c.mu.Lock()
		n, closed := len(c.queue), c.closed
		c.mu.Unlock()
		if n > 0 {
			return true
		}
		if closed {
			return false
		}
		<-c.wake
	}
}

// waitWindow holds the queue open for coalescing while a scatter is in
// flight, returning when the fleet is idle, maxBatch reads are queued,
// maxWait elapsed, or drain started.
func (c *coalescer) waitWindow() {
	if c.maxWait <= 0 {
		return
	}
	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	for {
		c.mu.Lock()
		ready := c.queued >= c.maxBatch || c.closed || c.inflight == 0
		c.mu.Unlock()
		if ready {
			return
		}
		select {
		case <-timer.C:
			return
		case <-c.wake:
		}
	}
}

// take pops the next coalesced batch: pendings in arrival order up to
// maxBatch reads (a lone oversized request still goes whole); dead-ctx
// requests complete with their error and never scatter.
func (c *coalescer) take() ([]*cpending, int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var batch []*cpending
	reads := 0
	for len(c.queue) > 0 {
		p := c.queue[0]
		if err := p.ctx.Err(); err != nil {
			c.pop()
			p.err = err
			close(p.done)
			if c.st != nil {
				c.st.observeCanceled()
			}
			continue
		}
		if reads > 0 && reads+len(p.reads) > c.maxBatch {
			break
		}
		c.pop()
		batch = append(batch, p)
		reads += len(p.reads)
	}
	if len(batch) > 0 {
		c.inflight++
	}
	c.cond.Broadcast()
	return batch, reads
}

// pop removes the queue head (caller holds mu).
func (c *coalescer) pop() {
	p := c.queue[0]
	c.queue[0] = nil
	c.queue = c.queue[1:]
	c.queued -= len(p.reads)
}

// execute runs one coalesced scatter and demuxes the shared gather to every
// member by read range.
func (c *coalescer) execute(batch []*cpending, reads int) {
	all := make([]meraligner.Seq, 0, reads)
	for _, p := range batch {
		all = append(all, p.reads...)
	}
	ctx, cancel := groupContext(c.base, batch)
	// Stamp a carrier span context on the scatter so shard-side logs can be
	// correlated: a lone member's own trace travels to the shards intact; a
	// multi-request batch gets a fresh carrier trace, recorded as Link on
	// each member's rpc spans.
	var carrier telemetry.SpanContext
	if len(batch) == 1 {
		if tr := telemetry.TraceFrom(batch[0].ctx); tr != nil {
			carrier = tr.SpanContext().ChildOf()
		} else {
			carrier = telemetry.NewSpanContext()
		}
	} else {
		carrier = telemetry.NewSpanContext()
	}
	ctx = telemetry.WithSpanContext(ctx, carrier)
	disp := time.Now()
	g, err := c.scatter(ctx, all)
	finished := time.Now()
	cancel()
	if err == nil && c.st != nil {
		c.st.observeBatch(len(batch), reads)
	}

	lo := 0
	for _, p := range batch {
		hi := lo + len(p.reads)
		switch {
		case err != nil:
			p.err = err
		case p.ctx.Err() != nil:
			p.err = p.ctx.Err()
			if c.st != nil {
				c.st.observeCanceled()
			}
		default:
			p.win = &cwindow{g: g, lo: lo, hi: hi, enq: p.enq, disp: disp, done: finished, requests: len(batch)}
		}
		close(p.done)
		lo = hi
	}

	c.mu.Lock()
	c.inflight--
	c.cond.Broadcast()
	c.mu.Unlock()
	c.kick()
}

// groupContext derives the scatter context of one coalesced call: done when
// the router's base context is, or when every member's own context is — a
// lone disconnect never kills its batchmates' scatter.
func groupContext(base context.Context, batch []*cpending) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(base)
	var left atomic.Int32
	left.Store(int32(len(batch)))
	for _, p := range batch {
		go func(done <-chan struct{}) {
			select {
			case <-done:
				if left.Add(-1) == 0 {
					cancel()
				}
			case <-ctx.Done():
			}
		}(p.ctx.Done())
	}
	return ctx, cancel
}
