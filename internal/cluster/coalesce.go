package cluster

import (
	"context"
	"strconv"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/internal/coalesce"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// The router's micro-batcher: the generic internal/coalesce queue pointed at
// the fleet. Concurrent single-read requests glue into shared scatters, so
// the per-scatter cost — one HTTP round-trip per shard — is paid once per
// batching window instead of once per request. What remains here is the
// router-specific dressing: the scatter span-context carrier, and the
// trace-replay of a window into a request's telemetry.

// Sentinel errors the handlers translate to HTTP statuses (same statuses as
// the single node: 429 + Retry-After, 503 draining).
var (
	errOverloaded = coalesce.ErrOverloaded
	errDraining   = coalesce.ErrDraining
)

// scatterFunc runs one coalesced scatter across the fleet and returns the
// merged outcome.
type scatterFunc func(ctx context.Context, reads []meraligner.Seq) (*gather, error)

// cwindow is one request's view of a coalesced scatter: the shared merged
// gather plus this request's read range within it, and the timing needed
// to replay the scatter into the request's trace.
type cwindow struct {
	g  *gather
	lo int
	hi int

	enq      time.Time // when this request entered the queue
	disp     time.Time // when its scatter dispatched
	done     time.Time // when the scatter finished
	requests int       // member requests sharing the scatter
}

// record replays the window into a request trace: the queue wait as a
// batch_wait span, then one rpc span per shard call of the scatter (with
// the carrier trace ID as Link, so shard-side logs can be joined).
func (w *cwindow) record(tr *telemetry.Trace) {
	if tr == nil || w.disp.IsZero() {
		return
	}
	tr.Add("batch_wait", w.enq, w.disp.Sub(w.enq), func(sp *telemetry.Span) {
		sp.Requests = w.requests
		sp.Reads = w.hi - w.lo
	})
	for i := range w.g.calls {
		c := &w.g.calls[i]
		tr.Add("rpc", c.start, c.dur, func(sp *telemetry.Span) {
			sp.Shard = strconv.Itoa(c.shard)
			sp.Replica = strconv.Itoa(c.replica)
			sp.Addr = c.addr
			sp.Retries = c.attempts - 1
			sp.Hedged = c.hedged
			sp.Link = w.g.carrier
			if c.err != nil {
				sp.Status = "error"
				sp.Error = c.err.Error()
			}
		})
	}
}

// coalescerStats are the coalescer's observation hooks.
type coalescerStats interface {
	observeBatch(requests, reads int)
	observeCanceled()
}

// statsAdapter bridges the router's unexported hooks to coalesce.Stats.
type statsAdapter struct{ st coalescerStats }

func (a statsAdapter) ObserveBatch(requests, items int) { a.st.observeBatch(requests, items) }
func (a statsAdapter) ObserveCanceled()                 { a.st.observeCanceled() }

// coalescer wraps the generic queue with the router's read/gather types.
type coalescer struct {
	q *coalesce.Coalescer[meraligner.Seq, *gather]
}

func newCoalescer(base context.Context, scatter scatterFunc, maxBatch int, maxWait time.Duration, capacity int, st coalescerStats) *coalescer {
	var stats coalesce.Stats
	if st != nil {
		stats = statsAdapter{st}
	}
	q := coalesce.New(base, coalesce.Config[meraligner.Seq, *gather]{
		Call:     coalesce.Func[meraligner.Seq, *gather](scatter),
		MaxBatch: maxBatch,
		MaxWait:  maxWait,
		Capacity: capacity,
		Stats:    stats,
		Prepare:  scatterCarrier,
	})
	return &coalescer{q: q}
}

// scatterCarrier stamps a carrier span context on the scatter so shard-side
// logs can be correlated: a lone member's own trace travels to the shards
// intact; a multi-request batch gets a fresh carrier trace, recorded as Link
// on each member's rpc spans.
func scatterCarrier(ctx context.Context, members []context.Context) context.Context {
	var carrier telemetry.SpanContext
	if len(members) == 1 {
		if tr := telemetry.TraceFrom(members[0]); tr != nil {
			carrier = tr.SpanContext().ChildOf()
		} else {
			carrier = telemetry.NewSpanContext()
		}
	} else {
		carrier = telemetry.NewSpanContext()
	}
	return telemetry.WithSpanContext(ctx, carrier)
}

// queuedReads reports the reads currently waiting (for stats).
func (c *coalescer) queuedReads() int { return c.q.QueuedItems() }

// isClosed reports whether drain has started.
func (c *coalescer) isClosed() bool { return c.q.Closed() }

func (c *coalescer) enterDirect() { c.q.EnterDirect() }
func (c *coalescer) exitDirect()  { c.q.ExitDirect() }

// submit enqueues one request's reads and blocks until its scatter
// completes or ctx is done.
func (c *coalescer) submit(ctx context.Context, reads []meraligner.Seq) (*cwindow, error) {
	w, err := c.q.Submit(ctx, reads)
	if err != nil {
		return nil, err
	}
	return &cwindow{
		g: w.Result, lo: w.Lo, hi: w.Hi,
		enq: w.Enq, disp: w.Disp, done: w.Done, requests: w.Requests,
	}, nil
}

// closeNow stops admission without waiting.
func (c *coalescer) closeNow() { c.q.Close() }

// drain stops admission and flushes: queued requests still execute, then
// in-flight scatters finish. Returns when empty or ctx expires.
func (c *coalescer) drain(ctx context.Context) error { return c.q.Drain(ctx) }
