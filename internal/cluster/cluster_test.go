package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/genome"
	"github.com/lbl-repro/meraligner/internal/service"
)

// ---- merge semantics (pure unit tests over wire data) ----

func mkread(name, seq string) meraligner.Seq {
	s, err := meraligner.NewSeq(name, seq)
	if err != nil {
		panic(err)
	}
	return s
}

func TestMergeEqualScoreTiesAcrossShardsOrderCanonically(t *testing.T) {
	reads := []meraligner.Seq{mkread("r", "ACGTACGTACGT")}
	// Shard 1 holds target "zzz", shard 0 holds "aaa"; equal scores must
	// interleave into name order regardless of which shard reported first.
	per := []*client.AlignResponse{
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusOK, Alignments: []client.Alignment{
			{Target: "zzz", Strand: "+", Score: 12, QStart: 0, QEnd: 12, TStart: 5, TEnd: 17, NM: 0},
		}}}},
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusOK, Alignments: []client.Alignment{
			{Target: "aaa", Strand: "+", Score: 12, QStart: 0, QEnd: 12, TStart: 40, TEnd: 52, NM: 0},
			{Target: "aaa", Strand: "-", Score: 20, QStart: 0, QEnd: 12, TStart: 9, TEnd: 21, NM: 0},
		}}}},
	}
	out := mergeResults(reads, per)
	if len(out) != 1 || out[0].Status != client.StatusOK {
		t.Fatalf("merged = %+v", out)
	}
	got := make([]string, 0, 3)
	for _, a := range out[0].Alignments {
		got = append(got, fmt.Sprintf("%s/%d", a.Target, a.Score))
	}
	want := []string{"aaa/20", "aaa/12", "zzz/12"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("canonical order = %v, want %v", got, want)
		}
	}
}

func TestMergeUnmappedEverywhere(t *testing.T) {
	reads := []meraligner.Seq{mkread("r", "ACGTACGTACGT")}
	per := []*client.AlignResponse{
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusUnmapped}}},
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusUnmapped}}},
		nil, // a shard excluded by the partial policy
	}
	out := mergeResults(reads, per)
	if out[0].Status != client.StatusUnmapped || len(out[0].Alignments) != 0 {
		t.Fatalf("merged = %+v, want unmapped with no alignments", out[0])
	}
}

func TestMergeMappedOnExactlyOneShard(t *testing.T) {
	reads := []meraligner.Seq{mkread("r", "ACGTACGTACGT")}
	hit := client.Alignment{Target: "ctg1", Strand: "+", Score: 12, QEnd: 12, TStart: 3, TEnd: 15}
	per := []*client.AlignResponse{
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusUnmapped}}},
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusOK, Alignments: []client.Alignment{hit}}}},
	}
	out := mergeResults(reads, per)
	if out[0].Status != client.StatusOK || len(out[0].Alignments) != 1 || out[0].Alignments[0] != hit {
		t.Fatalf("merged = %+v, want the single shard's hit", out[0])
	}
}

func TestMergeTooShortPropagates(t *testing.T) {
	reads := []meraligner.Seq{mkread("r", "ACG")}
	per := []*client.AlignResponse{
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusTooShort}}},
		{Reads: []client.ReadResult{{Name: "r", Status: client.StatusTooShort}}},
	}
	out := mergeResults(reads, per)
	if out[0].Status != client.StatusTooShort {
		t.Fatalf("merged status = %q, want too_short", out[0].Status)
	}
}

// ---- real-fleet fixture: whole-reference node vs 3-shard fleet ----

var (
	fixOnce   sync.Once
	fixErr    error
	fixReads  []meraligner.Seq
	fixWhole  *meraligner.Aligner
	fixShards []*meraligner.Aligner
)

const fixShardCount = 3

func fixture(t *testing.T) {
	t.Helper()
	fixOnce.Do(func() {
		p := genome.EColiLike()
		p.GenomeLen = 60_000
		p.Depth = 2
		p.ContigMean = 6_000 // enough contigs for 3 nonempty shards
		p.InsertMean = 0
		p.Seed = 11
		ds, err := genome.Generate(p)
		if err != nil {
			fixErr = err
			return
		}
		fixReads = ds.Reads
		iopt := meraligner.DefaultIndexOptions(19)
		if fixWhole, fixErr = meraligner.Build(2, iopt, ds.Contigs); fixErr != nil {
			return
		}
		dir, err := os.MkdirTemp("", "cluster-shards-*")
		if err != nil {
			fixErr = err
			return
		}
		paths, err := meraligner.SaveShards(2, iopt, ds.Contigs, fixShardCount, dir)
		if err != nil {
			fixErr = err
			return
		}
		for _, path := range paths {
			sa, err := meraligner.OpenThreads(2, path)
			if err != nil {
				fixErr = err
				return
			}
			fixShards = append(fixShards, sa)
		}
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
}

func queryOpts() meraligner.QueryOptions {
	q := meraligner.DefaultQueryOptions()
	q.MaxSeedHits = 200
	q.CollectAlignments = true
	return q
}

// newFleet serves every shard fixture index behind its own httptest server
// and returns the base URLs in shard order.
func newFleet(t *testing.T) []string {
	t.Helper()
	fixture(t)
	urls := make([]string, 0, len(fixShards))
	for _, sa := range fixShards {
		srv, err := service.New(service.Config{Aligner: sa, Query: queryOpts(), Workers: 2, Version: "test"})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		fleetServers.Store(ts.URL, ts)
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		urls = append(urls, ts.URL)
	}
	return urls
}

// newSingle serves the whole-reference fixture index: the byte-identity
// oracle.
func newSingle(t *testing.T) *httptest.Server {
	t.Helper()
	fixture(t)
	srv, err := service.New(service.Config{Aligner: fixWhole, Query: queryOpts(), Workers: 2, Version: "test"})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return ts
}

func newRouter(t *testing.T, shards []string, mod func(*Config)) (*Router, *httptest.Server) {
	t.Helper()
	cfg := Config{
		Shards:         shards,
		Retry:          client.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
		HealthInterval: 50 * time.Millisecond,
		Version:        "test",
	}
	if mod != nil {
		mod(&cfg)
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt)
	t.Cleanup(func() {
		ts.Close()
		rt.Close()
	})
	return rt, ts
}

func waitReady(t *testing.T, rt *Router) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !rt.Ready() {
		if time.Now().After(deadline) {
			t.Fatal("router never became ready")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// post sends one align request and returns status, body, and headers.
func post(t *testing.T, url string, reads []meraligner.Seq, accept string) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(client.AlignRequest{Reads: client.FromSeqs(reads)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/align", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	// Pin the request ID so error bodies (which echo it) stay
	// byte-comparable between the router and a single node.
	req.Header.Set("X-Request-Id", "00112233445566778899aabbccddeeff")
	if accept != "" {
		req.Header.Set("Accept", accept)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// ---- the tentpole property: router output == single-node output ----

func TestRouterByteIdenticalToSingleNode(t *testing.T) {
	fleet := newFleet(t)
	single := newSingle(t)
	rt, rts := newRouter(t, fleet, nil)
	waitReady(t, rt)

	if len(fixReads) < 40 {
		t.Fatalf("fixture too small: %d reads", len(fixReads))
	}
	batches := [][]meraligner.Seq{
		fixReads[:1],    // single read
		fixReads[1:9],   // small batch (coalescer path)
		fixReads[:40],   // bigger batch
		fixReads[30:31], // another singleton, different genome region
	}
	for bi, reads := range batches {
		for _, accept := range []string{"application/json", "text/x-sam"} {
			wantCode, want := post(t, single.URL, reads, accept)
			gotCode, got := post(t, rts.URL, reads, accept)
			if wantCode != http.StatusOK || gotCode != wantCode {
				t.Fatalf("batch %d %s: status router=%d single=%d", bi, accept, gotCode, wantCode)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("batch %d %s: router body differs from single node\nrouter:\n%s\nsingle:\n%s",
					bi, accept, got, want)
			}
		}
	}
}

func TestRouterDirectPathByteIdentical(t *testing.T) {
	fleet := newFleet(t)
	single := newSingle(t)
	// MaxBatch below the request size forces the uncoalesced direct path.
	rt, rts := newRouter(t, fleet, func(c *Config) { c.MaxBatch = 4 })
	waitReady(t, rt)

	reads := fixReads[:16]
	_, want := post(t, single.URL, reads, "text/x-sam")
	code, got := post(t, rts.URL, reads, "text/x-sam")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("direct-path SAM differs from single node\nrouter:\n%s\nsingle:\n%s", got, want)
	}
	st := rt.Stats()
	if st.Batches == 0 || st.MaxBatchReads < int64(len(reads)) {
		t.Fatalf("direct path not exercised: %+v", st)
	}
}

func TestRouterAdmissionMatchesSingleNode(t *testing.T) {
	fleet := newFleet(t)
	single := newSingle(t)
	_, rts := newRouter(t, fleet, nil)
	rt, _ := http.Get(rts.URL + "/readyz")
	rt.Body.Close()

	short := []meraligner.Seq{mkread("tiny", "ACGTACGT")} // < K=19
	wantCode, want := post(t, single.URL, short, "application/json")
	// The router may still be warming; poll until it answers non-503.
	var gotCode int
	var got []byte
	deadline := time.Now().Add(5 * time.Second)
	for {
		gotCode, got = post(t, rts.URL, short, "application/json")
		if gotCode != http.StatusServiceUnavailable || time.Now().After(deadline) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if wantCode != http.StatusBadRequest || gotCode != wantCode {
		t.Fatalf("status router=%d single=%d", gotCode, wantCode)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("400 body differs:\nrouter: %s\nsingle: %s", got, want)
	}
}

func TestRouterGlobalTargetCatalog(t *testing.T) {
	fleet := newFleet(t)
	single := newSingle(t)
	rt, rts := newRouter(t, fleet, nil)
	waitReady(t, rt)

	fetch := func(url string) client.TargetsResponse {
		resp, err := http.Get(url + "/v1/targets")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET /v1/targets: %d", resp.StatusCode)
		}
		var out client.TargetsResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	got, want := fetch(rts.URL), fetch(single.URL)
	if got.K != want.K {
		t.Fatalf("router K=%d, single K=%d", got.K, want.K)
	}
	if got.Shard != nil {
		t.Fatalf("router catalog carries shard meta: %+v", got.Shard)
	}
	if len(got.Targets) != len(want.Targets) {
		t.Fatalf("router lists %d targets, single node %d", len(got.Targets), len(want.Targets))
	}
	for i := range want.Targets {
		if got.Targets[i] != want.Targets[i] {
			t.Fatalf("target %d: router %+v, single %+v", i, got.Targets[i], want.Targets[i])
		}
	}
}

// ---- shard failure: the configured policy, never silent loss ----

func TestShardFailureFailPolicy(t *testing.T) {
	fleet := newFleet(t)
	rt, rts := newRouter(t, fleet, nil) // default policy: fail
	waitReady(t, rt)

	killFleetShard(t, fleet[1])
	code, body := post(t, rts.URL, fixReads[:4], "application/json")
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502; body %s", code, body)
	}
	if !strings.Contains(string(body), "shard(s) unavailable") {
		t.Fatalf("error body %s", body)
	}
	if st := rt.Stats(); st.FailedRequests == 0 {
		t.Fatalf("failed_requests not counted: %+v", st)
	}
}

func TestShardFailurePartialPolicy(t *testing.T) {
	fleet := newFleet(t)
	rt, rts := newRouter(t, fleet, func(c *Config) { c.Degraded = DegradedPartial })
	waitReady(t, rt)

	killFleetShard(t, fleet[2])

	code, body := post(t, rts.URL, fixReads[:4], "application/json")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var resp client.AlignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Reads) != 4 {
		t.Fatalf("%d results for 4 reads", len(resp.Reads))
	}
	if len(resp.DegradedShards) != 1 || resp.DegradedShards[0] != fleet[2] {
		t.Fatalf("degraded_shards = %v, want [%s]", resp.DegradedShards, fleet[2])
	}

	code, sam := post(t, rts.URL, fixReads[:4], "text/x-sam")
	if code != http.StatusOK {
		t.Fatalf("SAM status = %d", code)
	}
	co := "@CO\tdegraded: results missing from shard(s) " + fleet[2]
	if !strings.Contains(string(sam), co) {
		t.Fatalf("SAM lacks degraded comment %q:\n%s", co, sam)
	}
	if st := rt.Stats(); st.DegradedServed == 0 {
		t.Fatalf("degraded_requests not counted: %+v", st)
	}
}

func TestAllShardsFailedAlwaysErrors(t *testing.T) {
	fleet := newFleet(t)
	rt, rts := newRouter(t, fleet, func(c *Config) { c.Degraded = DegradedPartial })
	waitReady(t, rt)
	for _, u := range fleet {
		killFleetShard(t, u)
	}
	code, body := post(t, rts.URL, fixReads[:2], "application/json")
	if code != http.StatusBadGateway {
		t.Fatalf("status = %d, want 502 even under partial policy; body %s", code, body)
	}
}

// killFleetShard closes the httptest server serving the given base URL.
// The fixtures register the servers via t.Cleanup, so tests use a registry.
var fleetServers sync.Map // base URL -> *httptest.Server

func killFleetShard(t *testing.T, url string) {
	t.Helper()
	v, ok := fleetServers.Load(url)
	if !ok {
		t.Fatalf("no fleet server registered for %s", url)
	}
	v.(*httptest.Server).Close()
}

// ---- warming, retries, stats: the robustness surface ----

func TestRouterWarmsUntilFleetReachable(t *testing.T) {
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	rt, rts := newRouter(t, []string{deadURL}, nil)
	if rt.Ready() {
		t.Fatal("router ready with an unreachable fleet")
	}
	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || !strings.Contains(string(body), "warming") {
		t.Fatalf("readyz = %d %q, want 503 warming", resp.StatusCode, body)
	}
	code, abody := post(t, rts.URL, []meraligner.Seq{mkread("r", "ACGTACGTACGTACGTACGTACGT")}, "application/json")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(abody), "warming") {
		t.Fatalf("align while warming = %d %q, want 503 warming", code, abody)
	}
}

// flakyShard is a minimal fake shard: a fixed catalog, and an align handler
// that rejects the first `fail` calls with 503 before serving.
func flakyShard(t *testing.T, fail int) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var calls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/targets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(client.TargetsResponse{K: 4, Targets: []client.TargetInfo{{Name: "t0", Length: 100}}})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("POST /v1/align", func(w http.ResponseWriter, r *http.Request) {
		var req client.AlignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if calls.Add(1) <= int64(fail) {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			io.WriteString(w, `{"error":"overloaded: simulated"}`+"\n")
			return
		}
		out := client.AlignResponse{Reads: make([]client.ReadResult, len(req.Reads))}
		for i, rd := range req.Reads {
			out.Reads[i] = client.ReadResult{Name: rd.Name, Status: client.StatusUnmapped}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts, &calls
}

func TestShardRetriesHonor503AndAreCounted(t *testing.T) {
	ts, calls := flakyShard(t, 2)
	rt, rts := newRouter(t, []string{ts.URL}, nil)
	waitReady(t, rt)

	code, body := post(t, rts.URL, []meraligner.Seq{mkread("r", "ACGTACGT")}, "application/json")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("shard saw %d align calls, want 3 (2 failures + 1 success)", got)
	}
	st := rt.Stats()
	if len(st.Shards) != 1 {
		t.Fatalf("stats lists %d shards", len(st.Shards))
	}
	if sh := st.Shards[0]; sh.Calls != 3 || sh.Retries != 2 {
		t.Fatalf("shard stats = %+v, want calls=3 retries=2", sh)
	}
}

func TestRouterStatsAndMetricsSurface(t *testing.T) {
	ts, _ := flakyShard(t, 0)
	rt, rts := newRouter(t, []string{ts.URL}, nil)
	waitReady(t, rt)
	if code, _ := post(t, rts.URL, []meraligner.Seq{mkread("r", "ACGTACGT")}, "application/json"); code != http.StatusOK {
		t.Fatalf("align = %d", code)
	}

	resp, err := http.Get(rts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st client.RouterStats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Ready || st.Requests != 1 || st.Reads != 1 || st.K != 4 || len(st.Shards) != 1 {
		t.Fatalf("stats = %+v", st)
	}

	mresp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		"merrouted_requests_total 1",
		"merrouted_reads_total 1",
		"merrouted_ready 1",
		`merrouted_shard_calls_total{shard="0",addr=`,
		"merrouted_shard_call_latency_seconds{",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody)
		}
	}
}

func TestRouterDrainRefusesNewWork(t *testing.T) {
	ts, _ := flakyShard(t, 0)
	rt, rts := newRouter(t, []string{ts.URL}, nil)
	waitReady(t, rt)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := rt.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	code, body := post(t, rts.URL, []meraligner.Seq{mkread("r", "ACGTACGT")}, "application/json")
	if code != http.StatusServiceUnavailable || !strings.Contains(string(body), "draining") {
		t.Fatalf("align after drain = %d %q, want 503 draining", code, body)
	}
	resp, err := http.Get(rts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	hb, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || string(hb) != "draining\n" {
		t.Fatalf("healthz after drain = %d %q", resp.StatusCode, hb)
	}
}
