package cluster

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"math/rand/v2"
	"strings"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// Replica sets and fault tolerance. Each reference shard may be served by
// N interchangeable backends ("-shards a1|a2,b1|b2"); a scatter sends each
// shard's RPC to one healthy replica and the shard is lost only when every
// replica of it is. Three mechanisms keep the RPC away from bad replicas
// and bound its tail:
//
//   - selection: power-of-two-choices on in-flight count among the
//     healthiest breaker class (closed+up first, then closed, then
//     half-open, then — as a last resort, so a fully-tripped shard can
//     still recover through traffic — open);
//   - per-replica circuit breakers: BreakerThreshold consecutive failures
//     open a replica's breaker and take it out of selection; the /readyz
//     prober walks it back (open → half-open → closed), so probes gate
//     traffic instead of only feeding a gauge;
//   - failover and hedging: a failed attempt immediately retries the next
//     untried replica; optionally (HedgeAfter) a slow attempt is raced
//     against a second replica, first response winning and the loser
//     canceled.

// Circuit breaker states of one replica. The wire spelling (ReplicaStatus
// .State, merrouted_replica_state) is client.BreakerClosed and friends.
const (
	breakerClosed   int32 = iota // healthy: taking traffic
	breakerHalfOpen              // probation: probes recovered, trial traffic allowed
	breakerOpen                  // failing: out of selection until probes recover
)

// breakerStateName maps a breaker state to its wire spelling.
func breakerStateName(s int32) string {
	switch s {
	case breakerHalfOpen:
		return client.BreakerHalfOpen
	case breakerOpen:
		return client.BreakerOpen
	default:
		return client.BreakerClosed
	}
}

// replica is one backend of one shard: its client, circuit breaker, and
// live counters.
type replica struct {
	shard int // owning shard's id
	idx   int // position within the replica set
	addr  string
	cl    *client.Client

	state       atomic.Int32 // breaker state (breaker* constants)
	consecFails atomic.Int32 // consecutive terminal failures

	up       atomic.Bool    // last readiness probe succeeded
	calls    atomic.Int64   // RPC attempts issued
	retries  atomic.Int64   // attempts beyond a call's first
	errors   atomic.Int64   // calls that exhausted their retries
	inflight atomic.Int64   // calls in flight
	lat      telemetry.Hist // per-attempt wall time
}

// align runs one align RPC against the replica under the retry policy,
// counting every attempt into the replica's and the owning set's
// histograms.
func (rep *replica) align(ctx context.Context, pol client.RetryPolicy, req client.AlignRequest, set *shardSet) (resp *client.AlignResponse, attempts int, err error) {
	rep.inflight.Add(1)
	defer rep.inflight.Add(-1)
	err = pol.Do(ctx, func(actx context.Context) error {
		attempts++
		if attempts > 1 {
			rep.retries.Add(1)
		}
		rep.calls.Add(1)
		t0 := time.Now()
		r, rerr := rep.cl.Align(actx, req)
		ns := time.Since(t0).Nanoseconds()
		rep.lat.Observe(ns)
		set.lat.Observe(ns)
		if rerr != nil {
			return rerr
		}
		resp = r
		return nil
	})
	if err != nil {
		return nil, attempts, err
	}
	return resp, attempts, nil
}

// noteSuccess resets the failure streak and closes the breaker from any
// state: a served request is better evidence than any probe.
func (rep *replica) noteSuccess(lg *slog.Logger) {
	rep.consecFails.Store(0)
	if old := rep.state.Swap(breakerClosed); old != breakerClosed {
		lg.Info("breaker closed", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr,
			"cause", "request succeeded")
	}
}

// noteFailure advances the breaker on one terminal RPC failure: threshold
// consecutive failures open it from closed, and any failure during the
// half-open probation re-opens it. threshold <= 0 disables breakers.
func (rep *replica) noteFailure(threshold int, lg *slog.Logger, cause error) {
	fails := rep.consecFails.Add(1)
	if threshold <= 0 {
		return
	}
	switch rep.state.Load() {
	case breakerClosed:
		if int(fails) >= threshold && rep.state.CompareAndSwap(breakerClosed, breakerOpen) {
			lg.Warn("breaker open", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr,
				"consecutive_failures", fails, "error", cause.Error())
		}
	case breakerHalfOpen:
		if rep.state.CompareAndSwap(breakerHalfOpen, breakerOpen) {
			lg.Warn("breaker open", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr,
				"cause", "half-open trial failed", "error", cause.Error())
		}
	}
}

// noteProbe advances the breaker on one readiness probe: a probe success
// moves open to half-open and half-open to closed (the prober is what
// walks a tripped replica back into rotation); a probe failure re-opens a
// half-open breaker.
func (rep *replica) noteProbe(ok bool, lg *slog.Logger) {
	if rep.up.Swap(ok) != ok {
		if ok {
			lg.Info("replica up", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr)
		} else {
			lg.Warn("replica down", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr)
		}
	}
	if ok {
		switch {
		case rep.state.CompareAndSwap(breakerOpen, breakerHalfOpen):
			lg.Info("breaker half-open", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr,
				"cause", "readiness probe succeeded")
		case rep.state.CompareAndSwap(breakerHalfOpen, breakerClosed):
			rep.consecFails.Store(0)
			lg.Info("breaker closed", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr,
				"cause", "readiness probe succeeded")
		}
	} else if rep.state.CompareAndSwap(breakerHalfOpen, breakerOpen) {
		lg.Warn("breaker open", "shard", rep.shard, "replica", rep.idx, "addr", rep.addr,
			"cause", "readiness probe failed")
	}
}

// class ranks a replica for selection; lower is better.
func (rep *replica) class() int {
	switch rep.state.Load() {
	case breakerOpen:
		return 3
	case breakerHalfOpen:
		if rep.inflight.Load() > 0 {
			// Probation admits one trial at a time; a busy half-open
			// replica ranks with open ones.
			return 3
		}
		return 2
	default:
		if rep.up.Load() {
			return 0
		}
		return 1
	}
}

// status renders the replica's wire status.
func (rep *replica) status() client.ReplicaStatus {
	return client.ReplicaStatus{
		Addr:      rep.addr,
		State:     breakerStateName(rep.state.Load()),
		Up:        rep.up.Load(),
		Calls:     rep.calls.Load(),
		Retries:   rep.retries.Load(),
		Errors:    rep.errors.Load(),
		Inflight:  rep.inflight.Load(),
		CallP50Ms: rep.lat.Quantile(0.50) / 1e6,
		CallP99Ms: rep.lat.Quantile(0.99) / 1e6,
	}
}

// shardSet is one reference shard's replica set.
type shardSet struct {
	id       int
	replicas []*replica
	lat      telemetry.Hist // per-attempt wall time across the whole set
}

// addrs renders the set's addresses in the configured "a|b" spelling — the
// shard's name in errors, degraded annotations, and metrics labels. A
// single-replica set renders as the bare address, preserving the
// un-replicated fleet's output byte-for-byte.
func (ss *shardSet) addrs() string {
	if len(ss.replicas) == 1 {
		return ss.replicas[0].addr
	}
	parts := make([]string, len(ss.replicas))
	for i, rep := range ss.replicas {
		parts[i] = rep.addr
	}
	return strings.Join(parts, "|")
}

// pick selects the replica for the next attempt: the best breaker class
// among the not-yet-tried replicas, power-of-two-choices on in-flight
// count within the class. nil when every replica has been tried.
func (ss *shardSet) pick(tried map[*replica]bool) *replica {
	var cands []*replica
	best := int(^uint(0) >> 1)
	for _, rep := range ss.replicas {
		if tried[rep] {
			continue
		}
		switch c := rep.class(); {
		case c < best:
			best = c
			cands = append(cands[:0], rep)
		case c == best:
			cands = append(cands, rep)
		}
	}
	switch len(cands) {
	case 0:
		return nil
	case 1:
		return cands[0]
	}
	i := rand.IntN(len(cands))
	j := rand.IntN(len(cands) - 1)
	if j >= i {
		j++
	}
	if cands[j].inflight.Load() < cands[i].inflight.Load() {
		return cands[j]
	}
	return cands[i]
}

// targets fetches the shard's reference catalog through the first replica
// that answers (warmup path; not counted as align traffic).
func (ss *shardSet) targets(ctx context.Context, pol client.RetryPolicy) (*client.TargetsResponse, error) {
	var lastErr error
	for _, rep := range ss.replicas {
		var resp *client.TargetsResponse
		err := pol.Do(ctx, func(actx context.Context) error {
			r, rerr := rep.cl.Targets(actx)
			if rerr != nil {
				return rerr
			}
			resp = r
			return nil
		})
		if err == nil {
			return resp, nil
		}
		lastErr = fmt.Errorf("replica %d (%s): %w", rep.idx, rep.addr, err)
		if ctx.Err() != nil {
			break
		}
	}
	return nil, lastErr
}

// status renders the set's wire status: per-replica detail plus the
// aggregate counters a single-backend dashboard already reads.
func (ss *shardSet) status() client.ShardStatus {
	st := client.ShardStatus{
		ID:        ss.id,
		Addr:      ss.addrs(),
		CallP50Ms: ss.lat.Quantile(0.50) / 1e6,
		CallP99Ms: ss.lat.Quantile(0.99) / 1e6,
	}
	st.Replicas = make([]client.ReplicaStatus, len(ss.replicas))
	for i, rep := range ss.replicas {
		rs := rep.status()
		st.Replicas[i] = rs
		st.Calls += rs.Calls
		st.Retries += rs.Retries
		st.Errors += rs.Errors
		st.Inflight += rs.Inflight
		st.Up = st.Up || rs.Up
	}
	return st
}

// attemptResult is one replica attempt's outcome inside alignSet.
type attemptResult struct {
	rep   *replica
	resp  *client.AlignResponse
	call  rpcCall
	err   error
	hedge bool
}

// alignSet runs one shard's RPC with failover and optional hedging: launch
// an attempt on the best replica; on failure, fail over to the next
// untried replica; after cfg.HedgeAfter with no answer (and budget left),
// race a second replica. The first success wins and cancels the rest. The
// returned calls list records every attempt for the request trace. An
// error means every replica of the shard failed (or ctx died first).
func (rt *Router) alignSet(ctx context.Context, ss *shardSet, req client.AlignRequest, wantReads int) (*client.AlignResponse, []rpcCall, error) {
	results := make(chan attemptResult, len(ss.replicas))
	tried := make(map[*replica]bool, len(ss.replicas))
	var cancels []context.CancelFunc
	cancelAll := func() {
		for _, c := range cancels {
			c()
		}
	}
	defer cancelAll()

	outstanding := 0
	launch := func(hedge bool) bool {
		rep := ss.pick(tried)
		if rep == nil {
			return false
		}
		tried[rep] = true
		outstanding++
		actx, cancel := context.WithCancel(ctx)
		cancels = append(cancels, cancel)
		go func() {
			t0 := time.Now()
			resp, attempts, err := rep.align(actx, rt.cfg.Retry, req, ss)
			if err == nil && len(resp.Reads) != wantReads {
				// A replica answering for a different batch shape is as
				// lost as an unreachable one — its data cannot be trusted
				// into a merge.
				err = fmt.Errorf("protocol violation: %d results for %d reads", len(resp.Reads), wantReads)
				resp = nil
			}
			if err == nil {
				rep.noteSuccess(rt.logger)
			} else if actx.Err() == nil || !isCtxErr(err) {
				// A canceled attempt (hedge loser, client gone) is not
				// evidence against the replica; everything else is.
				rep.errors.Add(1)
				rep.noteFailure(rt.cfg.BreakerThreshold, rt.logger, err)
			}
			results <- attemptResult{
				rep:  rep,
				resp: resp,
				err:  err,
				call: rpcCall{
					shard: ss.id, replica: rep.idx, addr: rep.addr,
					start: t0, dur: time.Since(t0), attempts: attempts, err: err, hedged: hedge,
				},
				hedge: hedge,
			}
		}()
		return true
	}
	launch(false)
	rt.st.primaries.Add(1)

	var hedgeC <-chan time.Time
	if rt.cfg.HedgeAfter > 0 && len(ss.replicas) > 1 {
		timer := time.NewTimer(rt.cfg.HedgeAfter)
		defer timer.Stop()
		hedgeC = timer.C
	}

	var calls []rpcCall
	var failures []error
	for outstanding > 0 {
		select {
		case res := <-results:
			outstanding--
			calls = append(calls, res.call)
			if res.err == nil {
				if res.hedge {
					rt.st.hedgeWins.Add(1)
				}
				cancelAll() // losers see their ctx die and do not re-merge
				return res.resp, calls, nil
			}
			failures = append(failures, fmt.Errorf("replica %d (%s): %w", res.rep.idx, res.rep.addr, res.err))
			if outstanding == 0 && ctx.Err() == nil && launch(false) {
				rt.st.failovers.Add(1)
			}
		case <-hedgeC:
			hedgeC = nil
			if rt.hedgeAllowed() && launch(true) {
				rt.st.hedges.Add(1)
			}
		case <-ctx.Done():
			cancelAll()
			// Outstanding attempts resolve into the buffered channel and
			// their goroutines exit; nothing leaks.
			return nil, calls, ctx.Err()
		}
	}
	return nil, calls, errors.Join(failures...)
}

// hedgeAllowed enforces the hedging budget: hedges may be at most ~10% of
// primary attempts, plus a small burst so a cold router can still hedge.
// An unbounded hedge rate would double fleet load exactly when the fleet
// is slow — the moment it can least afford it.
func (rt *Router) hedgeAllowed() bool {
	return rt.st.hedges.Load() < rt.st.primaries.Load()/10+8
}

// isCtxErr reports whether err is a context cancellation/expiry
// (possibly wrapped by the HTTP transport).
func isCtxErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
