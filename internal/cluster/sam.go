package cluster

import (
	"fmt"
	"io"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// SAM rendering from wire data. The router holds no target bases, only the
// fleet catalog (names and lengths) and the merged wire alignments, yet its
// SAM output must be byte-identical to a single whole-reference node's.
// That works because every field of a record is derivable from what the
// wire carries: the header needs only names/lengths (seqio.SAMRef), NM is
// computed shard-side and shipped on each alignment, and the canonical
// alignment order (client.CanonicalizeAlignments) makes "first = primary"
// mean the same thing here as in the single node's writeQuery. This file is
// the wire-side mirror of SAMStream.writeQuery in samstream.go — any change
// to record shape must land in both (the byte-identity e2e test catches a
// drift).

// writeSAM renders one response's merged results as a complete SAM
// document: global header over refs, then records per read in request
// order. comments become @CO lines after @PG — how a degraded partial
// response annotates itself in-band.
func writeSAM(w io.Writer, refs []seqio.SAMRef, reads []meraligner.Seq, results []client.ReadResult, comments []string) error {
	// Program/version match NewSAMStream exactly — same header bytes.
	sw, err := seqio.NewSAMWriterRefs(w, refs, "meraligner", "1.0", comments...)
	if err != nil {
		return err
	}
	for i := range reads {
		if err := writeWireQuery(sw, reads[i], results[i]); err != nil {
			return err
		}
	}
	return sw.Flush()
}

// writeWireQuery emits one read's records from its merged wire alignments,
// mirroring SAMStream.writeQuery: unmapped record when there are none (this
// also covers too-short reads, exactly as the single node renders them);
// otherwise the canonical-first alignment is primary and the rest are
// secondary, with soft clips spanning the read and the shard-computed NM.
func writeWireQuery(sw *seqio.SAMWriter, q meraligner.Seq, rr client.ReadResult) error {
	as := rr.Alignments
	if len(as) == 0 {
		return sw.Write(seqio.SAMRecord{
			QName: q.Name, Flag: seqio.FlagUnmapped,
			Seq: q.Seq.String(), Qual: string(q.Qual),
			TagAS: -1, TagNM: -1,
		})
	}
	L := q.Seq.Len()
	mapq := 60
	if len(as) > 1 {
		mapq = 3
	}
	for i, a := range as {
		flag := 0
		seq := q.Seq
		rc := a.Strand == "-"
		if rc {
			flag |= seqio.FlagReverse
			seq = seq.ReverseComplement()
		}
		// Alignments arrive canonicalized (score descending first), so the
		// first entry is the best — the same record the single node flags
		// primary after its own canonical sort.
		if i != 0 {
			flag |= seqio.FlagSecondary
		}
		qual := string(q.Qual)
		if rc && qual != "" {
			b := []byte(qual)
			for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
				b[l], b[r] = b[r], b[l]
			}
			qual = string(b)
		}
		body := a.Cigar
		if body == "" {
			body = fmt.Sprintf("%dM", a.QEnd-a.QStart)
		}
		cigar := body
		if a.QStart > 0 {
			cigar = fmt.Sprintf("%dS%s", a.QStart, cigar)
		}
		if a.QEnd < L {
			cigar = fmt.Sprintf("%s%dS", cigar, L-a.QEnd)
		}
		if err := sw.Write(seqio.SAMRecord{
			QName: q.Name, Flag: flag,
			RName: a.Target,
			Pos:   a.TStart + 1, MapQ: mapq,
			Cigar: cigar,
			Seq:   seq.String(), Qual: qual,
			TagAS: a.Score, TagNM: a.NM,
		}); err != nil {
			return err
		}
	}
	return nil
}
