package cluster

// Chaos e2e suite: the fault-tolerance acceptance tests. A replicated real
// fleet (each shard served by N merserved instances behind faultinject
// proxies) is driven through replica kills, circuit-breaker cycles, slow
// replicas with hedging, and deadline rejection, asserting the tentpole
// property the whole tier exists for: a client behind the router sees
// byte-identical SAM and zero 5xx as long as one replica of every shard
// survives.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	meraligner "github.com/lbl-repro/meraligner"
	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/faultinject"
	"github.com/lbl-repro/meraligner/internal/service"
)

// chaosFleet serves every shard fixture index behind nReplicas independent
// service instances, each fronted by its own faultinject proxy. Returns the
// router shard specs ("http://pA|http://pB") and the proxies indexed
// [shard][replica], so tests can fault any replica individually.
func chaosFleet(t *testing.T, nReplicas int) ([]string, [][]*faultinject.Proxy) {
	t.Helper()
	fixture(t)
	specs := make([]string, len(fixShards))
	proxies := make([][]*faultinject.Proxy, len(fixShards))
	for i, sa := range fixShards {
		parts := make([]string, 0, nReplicas)
		for r := 0; r < nReplicas; r++ {
			srv, err := service.New(service.Config{Aligner: sa, Query: queryOpts(), Workers: 2, Version: "test"})
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv)
			t.Cleanup(func() {
				ts.Close()
				srv.Close()
			})
			u, err := url.Parse(ts.URL)
			if err != nil {
				t.Fatal(err)
			}
			p, err := faultinject.New(u.Host, uint64(1000+i*10+r))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(p.Close)
			parts = append(parts, "http://"+p.Addr())
			proxies[i] = append(proxies[i], p)
		}
		specs[i] = strings.Join(parts, "|")
	}
	return specs, proxies
}

// killReplica makes a replica's proxy behave like a killed process: every
// new connection is reset and every in-flight one aborted.
func killReplica(p *faultinject.Proxy) {
	p.SetErrorRate(1)
	p.KillActive()
}

func healReplica(p *faultinject.Proxy) { p.SetErrorRate(0) }

// TestChaosReplicaKillByteIdenticalSAM is the acceptance test of the
// replica tier: with 2 replicas per shard, killing any single replica
// mid-batch yields byte-identical SAM with zero 5xx, for every choice of
// victim shard.
func TestChaosReplicaKillByteIdenticalSAM(t *testing.T) {
	specs, proxies := chaosFleet(t, 2)
	single := newSingle(t)
	rt, rts := newRouter(t, specs, func(c *Config) {
		c.HedgeAfter = 25 * time.Millisecond
	})
	waitReady(t, rt)

	reads := fixReads[:24]
	wantCode, want := post(t, single.URL, reads, "text/x-sam")
	if wantCode != http.StatusOK {
		t.Fatalf("oracle status = %d", wantCode)
	}

	const inflight = 4
	for shard := range proxies {
		victim := proxies[shard][0]
		codes := make([]int, inflight)
		bodies := make([][]byte, inflight)
		var wg sync.WaitGroup
		for g := 0; g < inflight; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				codes[g], bodies[g] = post(t, rts.URL, reads, "text/x-sam")
			}(g)
		}
		// Kill the victim while the batch is (likely) in flight; the exact
		// interleaving does not matter — every outcome must be a clean 200.
		time.Sleep(5 * time.Millisecond)
		killReplica(victim)
		wg.Wait()
		for g := 0; g < inflight; g++ {
			if codes[g] != http.StatusOK {
				t.Fatalf("shard %d victim: request %d = %d (want zero non-200s), body %s",
					shard, g, codes[g], bodies[g])
			}
			if !bytes.Equal(bodies[g], want) {
				t.Fatalf("shard %d victim: request %d SAM differs from single node\nrouter:\n%s\nsingle:\n%s",
					shard, g, bodies[g], want)
			}
		}
		// And with the replica still dead, fresh requests keep succeeding on
		// the survivor.
		code, got := post(t, rts.URL, reads, "text/x-sam")
		if code != http.StatusOK || !bytes.Equal(got, want) {
			t.Fatalf("shard %d victim dead: followup = %d, identical = %v", shard, code, bytes.Equal(got, want))
		}
		healReplica(victim)
	}
	if st := rt.Stats(); st.Failovers == 0 {
		t.Fatalf("no failovers counted across three replica kills: %+v", st)
	}
}

// TestChaosAllReplicasOfShardDead: -degraded semantics move to the replica
// set — the partial policy annotates a shard only when every replica of it
// is gone.
func TestChaosAllReplicasOfShardDead(t *testing.T) {
	specs, proxies := chaosFleet(t, 2)
	rt, rts := newRouter(t, specs, func(c *Config) { c.Degraded = DegradedPartial })
	waitReady(t, rt)

	// One replica down: NOT degraded.
	killReplica(proxies[1][0])
	code, body := post(t, rts.URL, fixReads[:4], "application/json")
	if code != http.StatusOK {
		t.Fatalf("one replica down: status = %d, body %s", code, body)
	}
	var resp client.AlignResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.DegradedShards) != 0 {
		t.Fatalf("one replica down marked degraded: %v", resp.DegradedShards)
	}

	// Both replicas down: the shard is lost, annotated under its "a|b" name.
	killReplica(proxies[1][1])
	code, body = post(t, rts.URL, fixReads[:4], "application/json")
	if code != http.StatusOK {
		t.Fatalf("shard dead under partial policy: status = %d, body %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.DegradedShards) != 1 || resp.DegradedShards[0] != specs[1] {
		t.Fatalf("degraded_shards = %v, want [%s]", resp.DegradedShards, specs[1])
	}
}

// chaosReplica is a controllable fake replica: align failures, readiness
// failures, and serving delay are all switchable at runtime, and canceled
// in-flight aligns are counted (the hedge-loser observation).
type chaosReplica struct {
	alignFail atomic.Bool
	readyFail atomic.Bool
	delay     atomic.Int64 // ns to hold an align before answering
	calls     atomic.Int64
	canceled  atomic.Int64
	ts        *httptest.Server
}

func newChaosReplica(t *testing.T) *chaosReplica {
	t.Helper()
	cr := &chaosReplica{}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/targets", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(client.TargetsResponse{K: 4, Targets: []client.TargetInfo{{Name: "t0", Length: 100}}})
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if cr.readyFail.Load() {
			http.Error(w, "not ready", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready\n")
	})
	mux.HandleFunc("POST /v1/align", func(w http.ResponseWriter, r *http.Request) {
		cr.calls.Add(1)
		var req client.AlignRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if d := time.Duration(cr.delay.Load()); d > 0 {
			select {
			case <-time.After(d):
			case <-r.Context().Done():
				cr.canceled.Add(1)
				return
			}
		}
		if cr.alignFail.Load() {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusInternalServerError)
			io.WriteString(w, `{"error":"injected failure"}`+"\n")
			return
		}
		out := client.AlignResponse{Reads: make([]client.ReadResult, len(req.Reads))}
		for i, rd := range req.Reads {
			out.Reads[i] = client.ReadResult{Name: rd.Name, Status: client.StatusUnmapped}
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(out)
	})
	cr.ts = httptest.NewServer(mux)
	t.Cleanup(cr.ts.Close)
	return cr
}

// replicaState reads one replica's breaker state out of the router stats.
func replicaState(rt *Router, shard, replica int) string {
	st := rt.Stats()
	if shard >= len(st.Shards) || replica >= len(st.Shards[shard].Replicas) {
		return ""
	}
	return st.Shards[shard].Replicas[replica].State
}

// TestChaosBreakerOpensAndCloses walks one replica's circuit breaker
// through a full cycle: a replica that answers readiness probes but fails
// every align (the classic degenerate-healthy failure) accumulates
// consecutive failures until its breaker opens; after it heals, the
// prober walks the breaker back (open → half-open → closed) and traffic
// returns to it. The caller-visible invariant holds throughout: every
// request is a 200, served by failover.
func TestChaosBreakerOpensAndCloses(t *testing.T) {
	rep0, rep1 := newChaosReplica(t), newChaosReplica(t)
	rep0.alignFail.Store(true)
	rt, rts := newRouter(t, []string{rep0.ts.URL + "|" + rep1.ts.URL}, func(c *Config) {
		c.BreakerThreshold = 3
		c.HealthInterval = 40 * time.Millisecond
	})
	waitReady(t, rt)

	reads := []meraligner.Seq{mkread("r", "ACGTACGT")}
	// Drive traffic until the breaker opens. Each request that picks rep0
	// first fails there and fails over to rep1; rep0's failure streak only
	// grows (it never serves a success), so the breaker must open. The
	// prober may transiently close it again (probes succeed: the replica
	// claims ready) — observing "open" at least once is the assertion.
	sawOpen := false
	deadline := time.Now().Add(10 * time.Second)
	for !sawOpen && time.Now().Before(deadline) {
		code, body := post(t, rts.URL, reads, "application/json")
		if code != http.StatusOK {
			t.Fatalf("request during breaker test = %d, body %s", code, body)
		}
		if replicaState(rt, 0, 0) == client.BreakerOpen {
			sawOpen = true
		}
	}
	if !sawOpen {
		t.Fatalf("breaker never opened; rep0 saw %d calls, stats %+v", rep0.calls.Load(), rt.Stats().Shards[0])
	}

	// While open (or cycling), the per-replica surfaces exist: metrics carry
	// the replica series and stats carry per-replica detail.
	mresp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`merrouted_replica_state{shard="0",replica="0",addr=`,
		`merrouted_replica_up{shard="0",replica="1",addr=`,
		`merrouted_replica_calls_total{shard="0",replica="0",addr=`,
		"merrouted_failovers_total",
	} {
		if !strings.Contains(string(mbody), want) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody)
		}
	}
	if st := rt.Stats(); st.Failovers == 0 {
		t.Fatalf("failovers not counted: %+v", st)
	}

	// Heal. The prober closes the breaker and traffic returns: rep0 serves
	// a success again.
	rep0.alignFail.Store(false)
	servedBefore := rep0.calls.Load()
	deadline = time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		code, _ := post(t, rts.URL, reads, "application/json")
		if code != http.StatusOK {
			t.Fatalf("request after heal = %d", code)
		}
		if replicaState(rt, 0, 0) == client.BreakerClosed && rep0.calls.Load() > servedBefore {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("breaker never closed after heal: state %s, rep0 calls %d (was %d)",
		replicaState(rt, 0, 0), rep0.calls.Load(), servedBefore)
}

// TestChaosHedgeBeatsSlowReplicaAndCancelsLoser: a slow primary is raced
// against the second replica after HedgeAfter; the fast replica's answer
// wins and the slow attempt is canceled, so tail latency is the fast
// replica's, not the slow one's.
func TestChaosHedgeBeatsSlowReplicaAndCancelsLoser(t *testing.T) {
	slow, fast := newChaosReplica(t), newChaosReplica(t)
	slow.delay.Store(int64(2 * time.Second))
	// Keep the fast replica out of primary selection (probes failing ranks
	// it below the probed-up slow one) so the hedge path is deterministic:
	// primary = slow, hedge = fast.
	fast.readyFail.Store(true)
	rt, rts := newRouter(t, []string{slow.ts.URL + "|" + fast.ts.URL}, func(c *Config) {
		c.HedgeAfter = 25 * time.Millisecond
		c.Retry = client.RetryPolicy{MaxAttempts: 1, AttemptTimeout: 5 * time.Second}
	})
	waitReady(t, rt)

	reads := []meraligner.Seq{mkread("r", "ACGTACGT")}
	start := time.Now()
	code, body := post(t, rts.URL, reads, "application/json")
	elapsed := time.Since(start)
	if code != http.StatusOK {
		t.Fatalf("hedged request = %d, body %s", code, body)
	}
	if elapsed >= 2*time.Second {
		t.Fatalf("hedged request took %s — the slow replica's latency leaked through", elapsed)
	}
	st := rt.Stats()
	if st.Hedges == 0 || st.HedgeWins == 0 {
		t.Fatalf("hedge not counted: hedges=%d wins=%d", st.Hedges, st.HedgeWins)
	}
	// The loser was canceled, not left running to completion.
	deadline := time.Now().Add(3 * time.Second)
	for slow.canceled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("slow replica's losing attempt was never canceled (calls=%d)", slow.calls.Load())
		}
		time.Sleep(10 * time.Millisecond)
	}
	// Breaker discipline: a canceled hedge loser is not evidence against
	// the replica — its breaker must still be closed.
	if got := replicaState(rt, 0, 0); got != client.BreakerClosed {
		t.Fatalf("hedge loser's breaker = %s, want closed", got)
	}
}

// postWithDeadline is post() with an X-Deadline-Ms header attached.
func postWithDeadline(t *testing.T, url string, reads []meraligner.Seq, budgetMs int64) (int, []byte) {
	t.Helper()
	payload, err := json.Marshal(client.AlignRequest{Reads: client.FromSeqs(reads)})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/align", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(client.HeaderDeadlineMs, strconv.FormatInt(budgetMs, 10))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestChaosDeadlineAdmission: a request whose propagated deadline budget is
// below the router's admission floor is rejected up front with 503 and
// counted, instead of scattering doomed work; a comfortable budget passes.
func TestChaosDeadlineAdmission(t *testing.T) {
	rep := newChaosReplica(t)
	rt, rts := newRouter(t, []string{rep.ts.URL}, func(c *Config) {
		c.MinDeadline = 50 * time.Millisecond
	})
	waitReady(t, rt)

	reads := []meraligner.Seq{mkread("r", "ACGTACGT")}
	code, body := postWithDeadline(t, rts.URL, reads, 5)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("doomed request = %d, want 503; body %s", code, body)
	}
	if !strings.Contains(string(body), "doomed") {
		t.Fatalf("rejection body %s", body)
	}
	if rep.calls.Load() != 0 {
		t.Fatalf("doomed request still reached a replica (%d calls)", rep.calls.Load())
	}
	if st := rt.Stats(); st.DeadlineRejected != 1 {
		t.Fatalf("deadline_rejected = %d, want 1", st.DeadlineRejected)
	}

	code, body = postWithDeadline(t, rts.URL, reads, 5000)
	if code != http.StatusOK {
		t.Fatalf("well-budgeted request = %d, body %s", code, body)
	}

	mresp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(mbody), "merrouted_deadline_rejected_total 1") {
		t.Fatalf("metrics missing deadline rejection counter:\n%s", mbody)
	}
}

// TestChaosSlowLorisReplicaFailsOver: a replica trickling its response out
// slower than the attempt timeout is as dead as a crashed one — the
// attempt times out, the breaker charges it, and the survivor serves.
func TestChaosSlowLorisReplicaFailsOver(t *testing.T) {
	specs, proxies := chaosFleet(t, 2)
	single := newSingle(t)
	rt, rts := newRouter(t, specs, func(c *Config) {
		c.Retry = client.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond,
			MaxDelay: 5 * time.Millisecond, AttemptTimeout: 400 * time.Millisecond}
	})
	waitReady(t, rt)

	reads := fixReads[:8]
	_, want := post(t, single.URL, reads, "text/x-sam")

	// Replica 0 of shard 0 trickles: with headers alone being hundreds of
	// bytes at 64 bytes per 150ms, no response completes inside the 400ms
	// attempt timeout.
	proxies[0][0].SetSlowLoris(150 * time.Millisecond)
	code, got := post(t, rts.URL, reads, "text/x-sam")
	if code != http.StatusOK {
		t.Fatalf("status with slow-loris replica = %d, body %s", code, got)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("SAM under slow-loris replica differs from single node\nrouter:\n%s\nsingle:\n%s", got, want)
	}
}
