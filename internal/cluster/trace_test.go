package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/service"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// syncBuf is a concurrency-safe log sink: handlers write from request
// goroutines while the test reads.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// waitFor polls cond until it holds or the deadline passes (shard-side
// trace records are written in a deferred step that can race the router's
// response by a few microseconds).
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func ringHas(ring *telemetry.Ring, id string) func() bool {
	return func() bool {
		for _, rec := range ring.Snapshot() {
			if rec.RequestID == id {
				return true
			}
		}
		return false
	}
}

func findTrace(ring *telemetry.Ring, id string) (telemetry.RequestTrace, bool) {
	for _, rec := range ring.Snapshot() {
		if rec.RequestID == id {
			return rec, true
		}
	}
	return telemetry.RequestTrace{}, false
}

func stageCount(rec telemetry.RequestTrace, stage string) int {
	n := 0
	for _, sp := range rec.Spans {
		if sp.Stage == stage {
			n++
		}
	}
	return n
}

// TestEndToEndTraceAcrossTiers pins the tentpole acceptance: one request
// through the router to a 3-shard fleet yields one request ID visible in
// the response header, the router's and every shard's logs, and the
// /debug/requests traces of both tiers — and tracing never changes the
// SAM bytes.
func TestEndToEndTraceAcrossTiers(t *testing.T) {
	fixture(t)

	shardLogs := make([]*syncBuf, len(fixShards))
	shardSrvs := make([]*service.Server, len(fixShards))
	urls := make([]string, len(fixShards))
	for i, sa := range fixShards {
		shardLogs[i] = &syncBuf{}
		lg, err := telemetry.NewLogger(shardLogs[i], fmt.Sprintf("shard%d: ", i), "text", "debug")
		if err != nil {
			t.Fatal(err)
		}
		srv, err := service.New(service.Config{Aligner: sa, Query: queryOpts(), Workers: 2, Version: "test", Logger: lg})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(srv)
		t.Cleanup(func() {
			ts.Close()
			srv.Close()
		})
		shardSrvs[i] = srv
		urls[i] = ts.URL
	}

	routerLog := &syncBuf{}
	rlog, err := telemetry.NewLogger(routerLog, "router: ", "text", "debug")
	if err != nil {
		t.Fatal(err)
	}
	rt, rts := newRouter(t, urls, func(c *Config) { c.Logger = rlog })
	waitReady(t, rt)

	const reqID = "4bf92f3577b34da6a3ce929d0e0e4736"
	send := func(traced bool) (*http.Response, []byte) {
		t.Helper()
		payload, err := json.Marshal(client.AlignRequest{Reads: client.FromSeqs(fixReads[:4])})
		if err != nil {
			t.Fatal(err)
		}
		req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/align", bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set("Accept", "text/x-sam")
		if traced {
			req.Header.Set("traceparent", "00-"+reqID+"-00f067aa0ba902b7-01")
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status = %d, body %s", resp.StatusCode, body)
		}
		return resp, body
	}

	resp, tracedSAM := send(true)
	if got := resp.Header.Get("X-Request-Id"); got != reqID {
		t.Fatalf("X-Request-Id = %q, want the supplied trace ID %q", got, reqID)
	}

	// Tracing must not perturb output: an untraced request (which mints its
	// own ID) returns byte-identical SAM.
	resp2, untracedSAM := send(false)
	minted := resp2.Header.Get("X-Request-Id")
	if len(minted) != 32 || minted == reqID {
		t.Fatalf("untraced request ID = %q, want a fresh 32-hex ID", minted)
	}
	if !bytes.Equal(tracedSAM, untracedSAM) {
		t.Fatalf("SAM differs traced vs untraced:\ntraced:\n%s\nuntraced:\n%s", tracedSAM, untracedSAM)
	}

	// Router tier: the trace is in the ring with the full span set.
	rec, ok := findTrace(rt.TraceRing(), reqID)
	if !ok {
		t.Fatalf("router ring lacks request %s", reqID)
	}
	for _, stage := range []string{"admission", "batch_wait", "render"} {
		if stageCount(rec, stage) != 1 {
			t.Fatalf("router trace: want exactly one %q span, got %d in %+v", stage, stageCount(rec, stage), rec.Spans)
		}
	}
	if got := stageCount(rec, "rpc"); got != fixShardCount {
		t.Fatalf("router trace: %d rpc spans, want %d: %+v", got, fixShardCount, rec.Spans)
	}
	seenShards := map[string]bool{}
	for _, sp := range rec.Spans {
		if sp.Stage != "rpc" {
			continue
		}
		seenShards[sp.Shard] = true
		if sp.Addr == "" {
			t.Fatalf("rpc span lacks shard address: %+v", sp)
		}
		// An uncoalesced request's own trace travels to the shards.
		if sp.Link != reqID {
			t.Fatalf("rpc span link = %q, want the request's own trace %q (uncoalesced)", sp.Link, reqID)
		}
	}
	if len(seenShards) != fixShardCount {
		t.Fatalf("rpc spans name %d distinct shards, want %d", len(seenShards), fixShardCount)
	}
	if rec.Reads != 4 || rec.Status != http.StatusOK {
		t.Fatalf("router trace reads/status = %d/%d", rec.Reads, rec.Status)
	}

	// Shard tier: the same request ID reached every shard's ring and logs,
	// with the single-node span set.
	for i, srv := range shardSrvs {
		waitFor(t, ringHas(srv.TraceRing(), reqID), fmt.Sprintf("shard %d ring never saw request %s", i, reqID))
		srec, _ := findTrace(srv.TraceRing(), reqID)
		for _, stage := range []string{"admission", "batch_wait", "engine", "render"} {
			if stageCount(srec, stage) < 1 {
				t.Fatalf("shard %d trace lacks %q span: %+v", i, stage, srec.Spans)
			}
		}
		waitFor(t, func() bool { return strings.Contains(shardLogs[i].String(), reqID) },
			fmt.Sprintf("shard %d logs never mention request %s", i, reqID))
	}
	if !strings.Contains(routerLog.String(), reqID) {
		t.Fatalf("router logs never mention request %s:\n%s", reqID, routerLog.String())
	}

	// The debug endpoint serves the ring over HTTP.
	dbg := httptest.NewServer(telemetry.NewDebugMux(rt.TraceRing()))
	defer dbg.Close()
	dresp, err := http.Get(dbg.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dresp.Body.Close()
	dbody, err := io.ReadAll(dresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(dbody), reqID) {
		t.Fatalf("/debug/requests lacks request %s:\n%s", reqID, dbody)
	}
}

// TestErrorBodyEchoesRequestID pins the error-path half of the contract:
// a rejected request's JSON body names the same ID as the header.
func TestErrorBodyEchoesRequestID(t *testing.T) {
	fleet := newFleet(t)
	rt, rts := newRouter(t, fleet, nil)
	waitReady(t, rt)

	short := []client.Read{{Name: "tiny", Seq: "ACGTACGT"}} // < K=19
	payload, err := json.Marshal(client.AlignRequest{Reads: short})
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, rts.URL+"/v1/align", bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	var er client.ErrorResponse
	if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
		t.Fatal(err)
	}
	if er.RequestID == "" || er.RequestID != resp.Header.Get("X-Request-Id") {
		t.Fatalf("error body request_id %q != header %q", er.RequestID, resp.Header.Get("X-Request-Id"))
	}
}
