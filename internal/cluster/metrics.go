package cluster

import (
	"fmt"
	"io"
	"sync/atomic"
	"time"

	"github.com/lbl-repro/meraligner/client"
	"github.com/lbl-repro/meraligner/internal/telemetry"
)

// Router observability: lock-free counters and the shared telemetry.Hist
// latency histograms, mirroring internal/service's scheme (same bucket
// layout, same quantile estimator) so a merrouted dashboard reads like a
// merserved one.

// routerStats aggregates the router's live counters. It implements the
// coalescer's stats hooks (observeBatch, observeCanceled).
type routerStats struct {
	start time.Time

	requests atomic.Int64 // align requests served to completion
	rejected atomic.Int64 // 429s (admission queue full)
	canceled atomic.Int64 // client disconnects
	reads    atomic.Int64 // reads accepted for scattering
	tooShort atomic.Int64 // reads rejected as shorter than K

	degradedServed atomic.Int64 // partial responses served (partial policy)
	failedRequests atomic.Int64 // requests failed on shard errors

	primaries        atomic.Int64 // first-choice replica launches (hedge budget base)
	failovers        atomic.Int64 // launches on another replica after a failure
	hedges           atomic.Int64 // speculative second-replica launches
	hedgeWins        atomic.Int64 // hedges that answered before the primary
	deadlineRejected atomic.Int64 // requests rejected as doomed by their deadline

	batches          atomic.Int64 // scatters issued by the coalescer
	batchedReads     atomic.Int64 // reads across those scatters
	coalescedBatches atomic.Int64 // scatters gluing >= 2 requests
	maxBatchReads    atomic.Int64 // largest scatter seen

	reqLatency telemetry.Hist // request wall time, enqueue -> response ready
}

func newRouterStats() *routerStats { return &routerStats{start: time.Now()} }

func (s *routerStats) observeBatch(requests, reads int) {
	s.batches.Add(1)
	s.batchedReads.Add(int64(reads))
	if requests >= 2 {
		s.coalescedBatches.Add(1)
	}
	for {
		cur := s.maxBatchReads.Load()
		if int64(reads) <= cur || s.maxBatchReads.CompareAndSwap(cur, int64(reads)) {
			return
		}
	}
}

func (s *routerStats) observeCanceled() { s.canceled.Add(1) }

// snapshot renders the wire RouterStats counters (identity, readiness, and
// the shard list are filled in by the Router).
func (s *routerStats) snapshot() client.RouterStats {
	st := client.RouterStats{
		Requests:         s.requests.Load(),
		Rejected:         s.rejected.Load(),
		Canceled:         s.canceled.Load(),
		Reads:            s.reads.Load(),
		TooShort:         s.tooShort.Load(),
		DegradedServed:   s.degradedServed.Load(),
		FailedRequests:   s.failedRequests.Load(),
		Failovers:        s.failovers.Load(),
		Hedges:           s.hedges.Load(),
		HedgeWins:        s.hedgeWins.Load(),
		DeadlineRejected: s.deadlineRejected.Load(),
		Batches:          s.batches.Load(),
		BatchedReads:     s.batchedReads.Load(),
		CoalescedBatches: s.coalescedBatches.Load(),
		MaxBatchReads:    s.maxBatchReads.Load(),
		RequestP50Ms:     s.reqLatency.Quantile(0.50) / 1e6,
		RequestP99Ms:     s.reqLatency.Quantile(0.99) / 1e6,
	}
	if st.Batches > 0 {
		st.MeanBatchReads = float64(st.BatchedReads) / float64(st.Batches)
	}
	return st
}

// writeMetrics renders the router's Prometheus text exposition:
// merrouted_* request/coalescing series shaped like merserved_*, the
// per-shard merrouted_shard_* series labeled {shard="id",addr="..."},
// native cumulative histograms, and the Go runtime gauges. req and
// shardLat are the request and per-shard RPC latency histogram
// snapshots; shardLat is indexed like st.Shards.
func writeMetrics(w io.Writer, st client.RouterStats, req telemetry.HistSnapshot, shardLat []telemetry.HistSnapshot) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}
	b01 := func(b bool) float64 {
		if b {
			return 1
		}
		return 0
	}
	counter("merrouted_requests_total", "align requests served to completion", st.Requests)
	counter("merrouted_rejected_total", "requests rejected with 429 (queue full)", st.Rejected)
	counter("merrouted_canceled_total", "requests canceled by client disconnect", st.Canceled)
	counter("merrouted_reads_total", "reads accepted for scattering", st.Reads)
	counter("merrouted_too_short_reads_total", "reads rejected as shorter than K", st.TooShort)
	counter("merrouted_degraded_requests_total", "partial responses served under the partial policy", st.DegradedServed)
	counter("merrouted_failed_requests_total", "requests failed on shard errors", st.FailedRequests)
	counter("merrouted_failovers_total", "scatters re-launched on another replica after a failure", st.Failovers)
	counter("merrouted_hedges_total", "speculative second-replica launches", st.Hedges)
	counter("merrouted_hedge_wins_total", "hedged launches that answered before the primary", st.HedgeWins)
	counter("merrouted_deadline_rejected_total", "requests rejected as already doomed by their deadline", st.DeadlineRejected)
	counter("merrouted_batches_total", "coalesced scatters issued", st.Batches)
	counter("merrouted_batched_reads_total", "reads across coalesced scatters", st.BatchedReads)
	counter("merrouted_coalesced_batches_total", "scatters serving >= 2 requests", st.CoalescedBatches)
	gauge("merrouted_batch_reads_max", "largest coalesced scatter", float64(st.MaxBatchReads))
	gauge("merrouted_batch_reads_mean", "mean reads per scatter", st.MeanBatchReads)
	gauge("merrouted_queue_reads", "reads queued for the next batching window", float64(st.QueueReads))
	gauge("merrouted_ready", "1 once the global target catalog is assembled", b01(st.Ready))
	gauge("merrouted_draining", "1 while draining (healthz returns 503)", b01(st.Draining))
	fmt.Fprintf(w, "# HELP merrouted_request_latency_seconds request wall time quantiles\n")
	fmt.Fprintf(w, "# TYPE merrouted_request_latency_seconds summary\n")
	fmt.Fprintf(w, "merrouted_request_latency_seconds{quantile=\"0.5\"} %g\n", st.RequestP50Ms/1e3)
	fmt.Fprintf(w, "merrouted_request_latency_seconds{quantile=\"0.99\"} %g\n", st.RequestP99Ms/1e3)

	shardSeries := func(name, help, typ string, v func(client.ShardStatus) float64, format string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, sh := range st.Shards {
			fmt.Fprintf(w, "%s{shard=\"%d\",addr=%q} "+format+"\n", name, sh.ID, sh.Addr, v(sh))
		}
	}
	shardCounter := func(name, help string, v func(client.ShardStatus) int64) {
		shardSeries(name, help, "counter", func(sh client.ShardStatus) float64 { return float64(v(sh)) }, "%.0f")
	}
	shardSeries("merrouted_shard_up", "1 when the shard's last readiness probe succeeded", "gauge",
		func(sh client.ShardStatus) float64 { return b01(sh.Up) }, "%g")
	shardCounter("merrouted_shard_calls_total", "align RPC attempts issued to the shard",
		func(sh client.ShardStatus) int64 { return sh.Calls })
	shardCounter("merrouted_shard_retries_total", "align RPC attempts beyond the first",
		func(sh client.ShardStatus) int64 { return sh.Retries })
	shardCounter("merrouted_shard_errors_total", "align RPCs that exhausted their retries",
		func(sh client.ShardStatus) int64 { return sh.Errors })
	shardSeries("merrouted_shard_inflight", "align RPCs in flight right now", "gauge",
		func(sh client.ShardStatus) float64 { return float64(sh.Inflight) }, "%g")
	fmt.Fprintf(w, "# HELP merrouted_shard_call_latency_seconds per-attempt RPC wall time quantiles\n")
	fmt.Fprintf(w, "# TYPE merrouted_shard_call_latency_seconds summary\n")
	for _, sh := range st.Shards {
		fmt.Fprintf(w, "merrouted_shard_call_latency_seconds{shard=\"%d\",addr=%q,quantile=\"0.5\"} %g\n", sh.ID, sh.Addr, sh.CallP50Ms/1e3)
		fmt.Fprintf(w, "merrouted_shard_call_latency_seconds{shard=\"%d\",addr=%q,quantile=\"0.99\"} %g\n", sh.ID, sh.Addr, sh.CallP99Ms/1e3)
	}
	// Per-replica series, labeled {shard,replica,addr}. State encodes the
	// circuit breaker: 0 closed, 1 half_open, 2 open.
	breakerCode := func(state string) float64 {
		switch state {
		case client.BreakerHalfOpen:
			return 1
		case client.BreakerOpen:
			return 2
		default:
			return 0
		}
	}
	replicaSeries := func(name, help, typ string, v func(client.ReplicaStatus) float64, format string) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, sh := range st.Shards {
			for j, rep := range sh.Replicas {
				fmt.Fprintf(w, "%s{shard=\"%d\",replica=\"%d\",addr=%q} "+format+"\n", name, sh.ID, j, rep.Addr, v(rep))
			}
		}
	}
	replicaSeries("merrouted_replica_state", "circuit-breaker state: 0 closed, 1 half_open, 2 open", "gauge",
		func(rep client.ReplicaStatus) float64 { return breakerCode(rep.State) }, "%g")
	replicaSeries("merrouted_replica_up", "1 when the replica's last readiness probe succeeded", "gauge",
		func(rep client.ReplicaStatus) float64 { return b01(rep.Up) }, "%g")
	replicaSeries("merrouted_replica_calls_total", "align RPC attempts issued to the replica", "counter",
		func(rep client.ReplicaStatus) float64 { return float64(rep.Calls) }, "%.0f")
	replicaSeries("merrouted_replica_errors_total", "replica align RPCs that exhausted their retries", "counter",
		func(rep client.ReplicaStatus) float64 { return float64(rep.Errors) }, "%.0f")
	replicaSeries("merrouted_replica_inflight", "replica align RPCs in flight right now", "gauge",
		func(rep client.ReplicaStatus) float64 { return float64(rep.Inflight) }, "%g")
	// Native cumulative histograms under new *_duration_seconds names (the
	// *_latency_seconds summaries above keep their historical type).
	telemetry.WriteHistHeader(w, "merrouted_request_duration_seconds", "request wall time histogram")
	req.WriteSeries(w, "merrouted_request_duration_seconds", "")
	telemetry.WriteHistHeader(w, "merrouted_shard_call_duration_seconds", "per-attempt shard RPC wall time histogram")
	for i, sh := range st.Shards {
		if i < len(shardLat) {
			shardLat[i].WriteSeries(w, "merrouted_shard_call_duration_seconds",
				fmt.Sprintf("shard=\"%d\",addr=%q", sh.ID, sh.Addr))
		}
	}
	telemetry.WriteRuntimeMetrics(w, "merrouted")
}
