package meraligner

import (
	"fmt"
	"io"
	"sort"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// SAMStream writes SAM output incrementally: the header once at creation,
// then one WriteBatch call per aligned query batch. A batches-mode server
// holds one SAMStream for the life of an output and streams every batch
// through it, so output memory stays O(batch) instead of O(total reads).
//
// Records carry a real NM (edit distance) tag computed from the cigar and
// the sequences, and local alignments get soft clips so the cigar spans the
// full read — valid SAM for downstream tools.
type SAMStream struct {
	sw      *seqio.SAMWriter
	targets []Seq
}

// NewSAMStream writes the @HD/@SQ/@PG header for targets and returns the
// stream. The same targets must be the set the alignments refer to.
func NewSAMStream(w io.Writer, targets []Seq) (*SAMStream, error) {
	sw, err := seqio.NewSAMWriter(w, targets, "meraligner", "1.0")
	if err != nil {
		return nil, err
	}
	return &SAMStream{sw: sw, targets: targets}, nil
}

// WriteBatch emits one record set for a batch: alignments in res refer to
// queries by index into this batch's slice. Reads with no alignment get an
// unmapped record; the best-scoring alignment of each read is primary, the
// rest are flagged secondary.
func (s *SAMStream) WriteBatch(res *Results, queries []Seq) error {
	return s.WriteRange(res, queries, 0, len(queries))
}

// WriteRange emits records for the queries [lo, hi) of a batch, reading
// their alignments straight out of the full batch's res — the rendering
// half of coalesced-batch demuxing: a server that glued several requests
// into one engine call streams each request's SAM records from the shared
// Results without slicing it first. Record content is identical to a
// WriteBatch over just those queries.
func (s *SAMStream) WriteRange(res *Results, queries []Seq, lo, hi int) error {
	if lo < 0 || hi < lo || hi > len(queries) {
		return fmt.Errorf("meraligner: SAM range [%d,%d) out of range of %d queries", lo, hi, len(queries))
	}
	// Group the window's alignments per query (they are sorted by query
	// after a run, but grouping keeps this correct for any order).
	byQuery := make(map[int32][]Alignment, hi-lo)
	for _, a := range res.Alignments {
		if a.Query >= int32(lo) && a.Query < int32(hi) {
			byQuery[a.Query] = append(byQuery[a.Query], a)
		}
	}
	for qi := lo; qi < hi; qi++ {
		if err := s.writeQuery(queries[qi], byQuery[int32(qi)]); err != nil {
			return err
		}
	}
	return nil
}

// Flush flushes buffered output; call once after the final batch.
func (s *SAMStream) Flush() error { return s.sw.Flush() }

// CanonicalizeAlignments sorts one read's alignments into the canonical
// deterministic output order: score descending, then target name, target
// start, strand (forward first), query start, query end, target end, and
// finally cigar. The engine's raw order depends on seed traversal and is
// not reconstructible from the records themselves; every output face (SAM
// here, the JSON wire response in internal/service, and the scatter/gather
// router merging per-shard results in internal/cluster) applies this one
// rule, so any server topology over the same index contents emits
// byte-identical documents. Every tie-break key is wire-visible — the
// comparison never touches target indexes or sequences — which is exactly
// what lets a router that only sees wire alignments reproduce the order.
func CanonicalizeAlignments(targets []Seq, as []Alignment) {
	if len(as) < 2 {
		return
	}
	sort.SliceStable(as, func(i, j int) bool {
		x, y := &as[i], &as[j]
		if x.Score != y.Score {
			return x.Score > y.Score
		}
		nx, ny := targets[x.Target].Name, targets[y.Target].Name
		if nx != ny {
			return nx < ny
		}
		if x.TStart != y.TStart {
			return x.TStart < y.TStart
		}
		if x.RC != y.RC {
			return !x.RC
		}
		if x.QStart != y.QStart {
			return x.QStart < y.QStart
		}
		if x.QEnd != y.QEnd {
			return x.QEnd < y.QEnd
		}
		if x.TEnd != y.TEnd {
			return x.TEnd < y.TEnd
		}
		return x.Cigar < y.Cigar
	})
}

// AlignmentNM computes the SAM NM tag (edit distance) of one alignment of
// read q against target t: mismatches inside M runs plus all inserted and
// deleted bases, walked from the cigar exactly as the SAM writer does. An
// empty cigar means a pure match of QEnd-QStart bases (the exact-path
// convention). Returns -1 when the tag cannot be derived — unparseable
// cigar or coordinates outside either sequence — matching the writer's
// omit-the-tag convention. Shard servers compute this so a router can
// render SAM records without holding any target bases.
func AlignmentNM(q Seq, t Seq, a Alignment) int {
	body := a.Cigar
	if body == "" {
		body = fmt.Sprintf("%dM", a.QEnd-a.QStart)
	}
	ops, ok := parseCigar(body)
	if !ok {
		return -1
	}
	seq := q.Seq
	if a.RC {
		seq = seq.ReverseComplement()
	}
	if int(a.TStart) < 0 || int(a.TEnd) > t.Seq.Len() || a.TStart > a.TEnd {
		return -1
	}
	nm, ok := editDistance(ops, seq.Codes(), int(a.QStart), t.Seq, int(a.TStart), int(a.TEnd))
	if !ok {
		return -1
	}
	return nm
}

func (s *SAMStream) writeQuery(q Seq, as []Alignment) error {
	CanonicalizeAlignments(s.targets, as)
	if len(as) == 0 {
		return s.sw.Write(seqio.SAMRecord{
			QName: q.Name, Flag: seqio.FlagUnmapped,
			Seq: q.Seq.String(), Qual: string(q.Qual),
			TagAS: -1, TagNM: -1,
		})
	}
	best := 0
	for i, a := range as {
		if a.Score > as[best].Score {
			best = i
		}
	}
	L := q.Seq.Len()
	var fwdCodes, rcCodes []byte // lazily unpacked per strand
	for i, a := range as {
		flag := 0
		seq := q.Seq
		if a.RC {
			flag |= seqio.FlagReverse
			seq = seq.ReverseComplement()
		}
		if i != best {
			flag |= seqio.FlagSecondary
		}
		qual := string(q.Qual)
		if a.RC && qual != "" {
			b := []byte(qual)
			for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
				b[l], b[r] = b[r], b[l]
			}
			qual = string(b)
		}
		mapq := 60
		if len(as) > 1 {
			mapq = 3
		}
		body := a.Cigar
		if body == "" {
			body = fmt.Sprintf("%dM", a.QEnd-a.QStart)
		}
		nm := -1
		if ops, ok := parseCigar(body); ok {
			qc := fwdCodes
			if a.RC {
				if rcCodes == nil {
					rcCodes = seq.Codes()
				}
				qc = rcCodes
			} else {
				if fwdCodes == nil {
					fwdCodes = q.Seq.Codes()
					qc = fwdCodes
				}
			}
			tSeq := s.targets[a.Target].Seq
			if int(a.TStart) >= 0 && int(a.TEnd) <= tSeq.Len() && a.TStart <= a.TEnd {
				if v, ok := editDistance(ops, qc, int(a.QStart), tSeq, int(a.TStart), int(a.TEnd)); ok {
					nm = v
				}
			}
		}
		// Soft-clip the unaligned read ends so the cigar spans the read.
		cigar := body
		if a.QStart > 0 {
			cigar = fmt.Sprintf("%dS%s", a.QStart, cigar)
		}
		if int(a.QEnd) < L {
			cigar = fmt.Sprintf("%s%dS", cigar, L-int(a.QEnd))
		}
		if err := s.sw.Write(seqio.SAMRecord{
			QName: q.Name, Flag: flag,
			RName: s.targets[a.Target].Name,
			Pos:   int(a.TStart) + 1, MapQ: mapq,
			Cigar: cigar,
			Seq:   seq.String(), Qual: qual,
			TagAS: int(a.Score), TagNM: nm,
		}); err != nil {
			return err
		}
	}
	return nil
}

// parseCigar decodes a SAM-style run-length cigar of M/I/D operations.
func parseCigar(s string) (align.Cigar, bool) {
	var out align.Cigar
	n, digits := 0, false
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c >= '0' && c <= '9' {
			n = n*10 + int(c-'0')
			digits = true
			continue
		}
		if !digits || n == 0 || (c != 'M' && c != 'I' && c != 'D') {
			return nil, false
		}
		out = append(out, align.CigarOp{Op: c, Len: n})
		n, digits = 0, false
	}
	return out, !digits && len(out) > 0
}

// editDistance walks the cigar over the aligned-strand query codes qc
// (starting at qStart) and the target window [tStart, tEnd) of t, counting
// mismatches in M runs plus all inserted and deleted bases — the SAM NM
// tag. Target bases are read in place through CodeAt, so the output hot
// path allocates nothing per record. Reports false when the cigar
// oversteps either sequence.
func editDistance(ops align.Cigar, qc []byte, qStart int, t dna.Packed, tStart, tEnd int) (int, bool) {
	qp, tp, nm := qStart, tStart, 0
	for _, op := range ops {
		switch op.Op {
		case 'M':
			if qp+op.Len > len(qc) || tp+op.Len > tEnd {
				return 0, false
			}
			for i := 0; i < op.Len; i++ {
				if qc[qp+i] != t.CodeAt(tp+i) {
					nm++
				}
			}
			qp += op.Len
			tp += op.Len
		case 'I': // extra query bases relative to the target
			if qp+op.Len > len(qc) {
				return 0, false
			}
			nm += op.Len
			qp += op.Len
		case 'D': // target bases skipped by the query
			if tp+op.Len > tEnd {
				return 0, false
			}
			nm += op.Len
			tp += op.Len
		default:
			return 0, false
		}
	}
	return nm, true
}
