// Package meraligner is a Go reproduction of "merAligner: A Fully Parallel
// Sequence Aligner" (Georganas et al., IPDPS 2015): a seed-and-extend
// short-read aligner whose every phase — I/O, seed-index construction, and
// alignment — is parallel, built on a distributed hash table with the
// paper's aggregating-stores optimization, per-node software caches, an
// exact-match fast path, and striped Smith-Waterman.
//
// The primary API is persistent: Build constructs the seed index over the
// targets exactly once, and the resulting Aligner serves any number of
// query batches — concurrently, with per-call context cancellation:
//
//	a, err := meraligner.Build(8, meraligner.DefaultIndexOptions(19), targets)
//	res, err := a.Align(ctx, reads, meraligner.DefaultQueryOptions())
//
// Two one-shot convenience wrappers run both halves for a single batch:
//
//   - Align runs the full pipeline on a simulated PGAS machine (any number
//     of "cores" on 24-core nodes with an Edison-like cost model); results
//     carry both the alignments and the simulated per-phase timings used to
//     regenerate the paper's evaluation.
//
//   - AlignThreaded runs the identical pipeline with real goroutines on the
//     host and reports measured wall-clock phase times (the paper's
//     single-node shared-memory configuration). It is exactly Build
//     followed by one Align call.
//
// targets and reads are seqio.Seq slices (see ReadFasta/ReadQueries, which
// read FASTA/FASTQ/SeqDB and transparently decompress gzip).
package meraligner

import (
	"fmt"
	"io"
	"os"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Re-exported core types: Options configures a run, Results carries
// alignments plus per-phase statistics, Alignment is one reported hit.
type (
	Options   = core.Options
	Results   = core.Results
	Alignment = core.Alignment
	Seq       = seqio.Seq
	Scoring   = align.Scoring
	Machine   = upc.MachineConfig
)

// DefaultOptions returns the paper's configuration for seed length k
// (51 for the human/wheat runs, 19 for E. coli).
func DefaultOptions(k int) Options { return core.DefaultOptions(k) }

// DefaultScoring is the commonly employed scoring scheme used throughout.
var DefaultScoring = align.DefaultScoring

// Edison returns a simulated-machine description approximating a Cray XC30
// partition with the given total core count (24 cores per node).
func Edison(cores int) Machine { return upc.Edison(cores) }

// Align runs the full merAligner pipeline on the given simulated machine.
func Align(mach Machine, opt Options, targets, queries []Seq) (*Results, error) {
	return core.Run(mach, opt, targets, queries)
}

// AlignThreaded runs the pipeline with real goroutines on the host (the
// single-node shared-memory mode); Results phase stats carry genuine
// wall-clock times in RealWall. It is a one-shot convenience wrapper:
// exactly Build followed by a single (*Aligner).Align call. Services that
// align many batches should call those two halves directly and reuse the
// index.
func AlignThreaded(threads int, opt Options, targets, queries []Seq) (*Results, error) {
	return core.RunThreaded(threads, opt, targets, queries)
}

// NewSeq packs a textual sequence into a Seq usable as a Build target or
// an Align query, without going through a file: bases are stored two bits
// each, so only {A,C,G,T,a,c,g,t} are accepted (replace ambiguity codes
// before packing, as ReadFasta's ReplaceN option does).
func NewSeq(name, bases string) (Seq, error) {
	p, err := dna.Pack(bases)
	if err != nil {
		return Seq{}, err
	}
	return Seq{Name: name, Seq: p}, nil
}

// ReadFasta loads targets (contigs) from a FASTA file, transparently
// decompressing gzip (sniffed by magic bytes). Ambiguous bases (N) are
// replaced with A, as the assembly pipeline does before alignment.
func ReadFasta(path string) ([]Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, _, err := seqio.MaybeDecompress(f)
	if err != nil {
		return nil, err
	}
	return seqio.ReadFasta(r, seqio.ParseOptions{ReplaceN: true})
}

// ReadQueries loads reads from FASTQ or SeqDB (detected by content), with
// transparent gzip decompression for the text formats. SeqDB is a
// random-access container and cannot be read through gzip.
func ReadQueries(path string) ([]Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r, wasGzip, err := seqio.MaybeDecompress(f)
	if err != nil {
		return nil, err
	}
	magic, _ := r.Peek(4)
	if string(magic) == "MSDB" {
		if wasGzip {
			return nil, fmt.Errorf("meraligner: %s: gzipped SeqDB is not supported (SeqDB needs random access; decompress it first)", path)
		}
		// SeqDB reads by offset (ReadAt), unaffected by the sniffing above.
		db, err := seqio.OpenSeqDB(f)
		if err != nil {
			return nil, err
		}
		var out []Seq
		for c := 0; c < db.NumChunks(); c++ {
			recs, err := db.ReadChunk(c)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
		return out, nil
	}
	return seqio.ReadFastq(r, seqio.ParseOptions{ReplaceN: true})
}

// AlignFiles reads targets (FASTA) and queries (FASTQ or SeqDB) from disk
// and aligns them in threaded mode.
func AlignFiles(threads int, opt Options, targetPath, queryPath string) (*Results, []Seq, []Seq, error) {
	targets, err := ReadFasta(targetPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("meraligner: reading targets: %w", err)
	}
	queries, err := ReadQueries(queryPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("meraligner: reading queries: %w", err)
	}
	res, err := core.RunThreaded(threads, opt, targets, queries)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, targets, queries, nil
}

// WriteSAM writes the collected alignments as a SAM stream with @SQ headers
// for the targets: NewSAMStream + one WriteBatch + Flush. Reads with no
// alignment get an unmapped record; the best-scoring alignment of each read
// is primary, the rest are flagged secondary; NM tags are computed from the
// cigar and the sequences.
func WriteSAM(w io.Writer, res *Results, targets, queries []Seq) error {
	s, err := NewSAMStream(w, targets)
	if err != nil {
		return err
	}
	if err := s.WriteBatch(res, queries); err != nil {
		return err
	}
	return s.Flush()
}

// WriteAlignments writes alignments in a simple tab-separated format:
// query, target, strand, score, qstart, qend, tstart, tend, cigar.
func WriteAlignments(w io.Writer, res *Results, targets, queries []Seq) error {
	for _, a := range res.Alignments {
		strand := "+"
		if a.RC {
			strand = "-"
		}
		qn := fmt.Sprint(a.Query)
		if int(a.Query) < len(queries) {
			qn = queries[a.Query].Name
		}
		tn := fmt.Sprint(a.Target)
		if int(a.Target) < len(targets) {
			tn = targets[a.Target].Name
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			qn, tn, strand, a.Score, a.QStart, a.QEnd, a.TStart, a.TEnd, a.Cigar); err != nil {
			return err
		}
	}
	return nil
}
