// Package meraligner is a Go reproduction of "merAligner: A Fully Parallel
// Sequence Aligner" (Georganas et al., IPDPS 2015): a seed-and-extend
// short-read aligner whose every phase — I/O, seed-index construction, and
// alignment — is parallel, built on a distributed hash table with the
// paper's aggregating-stores optimization, per-node software caches, an
// exact-match fast path, and striped Smith-Waterman.
//
// Two execution modes are exposed:
//
//   - Align runs the full pipeline on a simulated PGAS machine (any number
//     of "cores" on 24-core nodes with an Edison-like cost model); results
//     carry both the alignments and the simulated per-phase timings used to
//     regenerate the paper's evaluation.
//
//   - AlignThreaded runs the identical pipeline with real goroutines on the
//     host and reports measured wall-clock phase times (the paper's
//     single-node shared-memory configuration).
//
// The quickest start:
//
//	res, err := meraligner.AlignThreaded(8, meraligner.DefaultOptions(19), targets, reads)
//
// where targets and reads are seqio.Seq slices (see ReadFasta/ReadFastq).
package meraligner

import (
	"fmt"
	"io"
	"os"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/core"
	"github.com/lbl-repro/meraligner/internal/seqio"
	"github.com/lbl-repro/meraligner/internal/upc"
)

// Re-exported core types: Options configures a run, Results carries
// alignments plus per-phase statistics, Alignment is one reported hit.
type (
	Options   = core.Options
	Results   = core.Results
	Alignment = core.Alignment
	Seq       = seqio.Seq
	Scoring   = align.Scoring
	Machine   = upc.MachineConfig
)

// DefaultOptions returns the paper's configuration for seed length k
// (51 for the human/wheat runs, 19 for E. coli).
func DefaultOptions(k int) Options { return core.DefaultOptions(k) }

// DefaultScoring is the commonly employed scoring scheme used throughout.
var DefaultScoring = align.DefaultScoring

// Edison returns a simulated-machine description approximating a Cray XC30
// partition with the given total core count (24 cores per node).
func Edison(cores int) Machine { return upc.Edison(cores) }

// Align runs the full merAligner pipeline on the given simulated machine.
func Align(mach Machine, opt Options, targets, queries []Seq) (*Results, error) {
	return core.Run(mach, opt, targets, queries)
}

// AlignThreaded runs the pipeline with real goroutines on the host (the
// single-node shared-memory mode); Results phase stats carry genuine
// wall-clock times in RealWall.
func AlignThreaded(threads int, opt Options, targets, queries []Seq) (*Results, error) {
	return core.RunThreaded(threads, opt, targets, queries)
}

// ReadFasta loads targets (contigs) from a FASTA file. Ambiguous bases (N)
// are replaced with A, as the assembly pipeline does before alignment.
func ReadFasta(path string) ([]Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return seqio.ReadFasta(f, seqio.ParseOptions{ReplaceN: true})
}

// ReadQueries loads reads from FASTQ or SeqDB (detected by content).
func ReadQueries(path string) ([]Seq, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [4]byte
	if _, err := f.ReadAt(magic[:], 0); err != nil && err != io.EOF {
		return nil, err
	}
	if string(magic[:]) == "MSDB" {
		db, err := seqio.OpenSeqDB(f)
		if err != nil {
			return nil, err
		}
		var out []Seq
		for c := 0; c < db.NumChunks(); c++ {
			recs, err := db.ReadChunk(c)
			if err != nil {
				return nil, err
			}
			out = append(out, recs...)
		}
		return out, nil
	}
	return seqio.ReadFastq(f, seqio.ParseOptions{ReplaceN: true})
}

// AlignFiles reads targets (FASTA) and queries (FASTQ or SeqDB) from disk
// and aligns them in threaded mode.
func AlignFiles(threads int, opt Options, targetPath, queryPath string) (*Results, []Seq, []Seq, error) {
	targets, err := ReadFasta(targetPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("meraligner: reading targets: %w", err)
	}
	queries, err := ReadQueries(queryPath)
	if err != nil {
		return nil, nil, nil, fmt.Errorf("meraligner: reading queries: %w", err)
	}
	res, err := core.RunThreaded(threads, opt, targets, queries)
	if err != nil {
		return nil, nil, nil, err
	}
	return res, targets, queries, nil
}

// WriteSAM writes the collected alignments as a SAM stream with @SQ headers
// for the targets. Reads with no alignment get an unmapped record. The
// best-scoring alignment of each read is primary; the rest are flagged
// secondary.
func WriteSAM(w io.Writer, res *Results, targets, queries []Seq) error {
	sw, err := seqio.NewSAMWriter(w, targets, "meraligner", "1.0")
	if err != nil {
		return err
	}
	// Group alignments per query (they are sorted by query after a run).
	byQuery := make(map[int32][]Alignment, len(queries))
	for _, a := range res.Alignments {
		byQuery[a.Query] = append(byQuery[a.Query], a)
	}
	for qi := range queries {
		q := queries[qi]
		as := byQuery[int32(qi)]
		if len(as) == 0 {
			if err := sw.Write(seqio.SAMRecord{
				QName: q.Name, Flag: seqio.FlagUnmapped,
				Seq: q.Seq.String(), Qual: string(q.Qual),
				TagAS: -1, TagNM: -1,
			}); err != nil {
				return err
			}
			continue
		}
		best := 0
		for i, a := range as {
			if a.Score > as[best].Score {
				best = i
			}
		}
		for i, a := range as {
			flag := 0
			seq := q.Seq
			if a.RC {
				flag |= seqio.FlagReverse
				seq = seq.ReverseComplement()
			}
			if i != best {
				flag |= seqio.FlagSecondary
			}
			qual := string(q.Qual)
			if a.RC && qual != "" {
				b := []byte(qual)
				for l, r := 0, len(b)-1; l < r; l, r = l+1, r-1 {
					b[l], b[r] = b[r], b[l]
				}
				qual = string(b)
			}
			mapq := 60
			if len(as) > 1 {
				mapq = 3
			}
			rec := seqio.SAMRecord{
				QName: q.Name, Flag: flag,
				RName: targets[a.Target].Name,
				Pos:   int(a.TStart) + 1, MapQ: mapq,
				Cigar: a.Cigar,
				Seq:   seq.String(), Qual: qual,
				TagAS: int(a.Score), TagNM: -1,
			}
			if rec.Cigar == "" {
				rec.Cigar = fmt.Sprintf("%dM", a.QEnd-a.QStart)
			}
			if err := sw.Write(rec); err != nil {
				return err
			}
		}
	}
	return sw.Flush()
}

// WriteAlignments writes alignments in a simple tab-separated format:
// query, target, strand, score, qstart, qend, tstart, tend, cigar.
func WriteAlignments(w io.Writer, res *Results, targets, queries []Seq) error {
	for _, a := range res.Alignments {
		strand := "+"
		if a.RC {
			strand = "-"
		}
		qn := fmt.Sprint(a.Query)
		if int(a.Query) < len(queries) {
			qn = queries[a.Query].Name
		}
		tn := fmt.Sprint(a.Target)
		if int(a.Target) < len(targets) {
			tn = targets[a.Target].Name
		}
		if _, err := fmt.Fprintf(w, "%s\t%s\t%s\t%d\t%d\t%d\t%d\t%d\t%s\n",
			qn, tn, strand, a.Score, a.QStart, a.QEnd, a.TStart, a.TEnd, a.Cigar); err != nil {
			return err
		}
	}
	return nil
}
