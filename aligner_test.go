package meraligner

import (
	"bytes"
	"compress/gzip"
	"context"
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"testing"

	"github.com/lbl-repro/meraligner/internal/dna"
	"github.com/lbl-repro/meraligner/internal/seqio"
)

// Build once + N Align calls must match N one-shot AlignThreaded runs
// byte-for-byte, and concurrent callers must agree with sequential ones.
func TestBuildAlignMatchesAlignThreaded(t *testing.T) {
	ds := apiWorkload(t)
	iopt := DefaultIndexOptions(31)
	qopt := DefaultQueryOptions()
	qopt.CollectAlignments = true

	a, err := Build(4, iopt, ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	third := len(ds.Reads) / 3
	for bi := 0; bi < 3; bi++ {
		batch := ds.Reads[bi*third : (bi+1)*third]
		oneShot := DefaultOptions(31)
		oneShot.CollectAlignments = true
		want, err := AlignThreaded(4, oneShot, ds.Contigs, batch)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Align(context.Background(), batch, qopt)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Alignments, got.Alignments) {
			t.Fatalf("batch %d: resident Align differs from AlignThreaded", bi)
		}
	}
}

func TestAlignerConcurrentBatches(t *testing.T) {
	ds := apiWorkload(t)
	qopt := DefaultQueryOptions()
	qopt.CollectAlignments = true
	a, err := Build(2, DefaultIndexOptions(31), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := a.Align(context.Background(), ds.Reads, qopt)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 8)
	for c := range errs {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			got, err := a.AlignWorkers(context.Background(), 1+c%2, ds.Reads, qopt)
			if err != nil {
				errs[c] = err
				return
			}
			if !reflect.DeepEqual(ref.Alignments, got.Alignments) {
				errs[c] = errors.New("concurrent Align results differ")
			}
		}(c)
	}
	wg.Wait()
	for c, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", c, err)
		}
	}
}

func TestAlignerContextCancellation(t *testing.T) {
	ds := apiWorkload(t)
	a, err := Build(2, DefaultIndexOptions(31), ds.Contigs)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.Align(ctx, ds.Reads, DefaultQueryOptions()); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// The streaming SAM path: one header, batches appended, real NM tags.
func TestSAMStreamBatchesAndNM(t *testing.T) {
	// A hand-built workload with known edit distances: reads cut straight
	// from the target (NM 0) and reads with one substituted base (NM 1).
	rng := rand.New(rand.NewSource(7))
	target := Seq{Name: "ref", Seq: dna.Random(rng, 600)}
	ref := target.Seq.String()
	exact := Seq{Name: "exact", Seq: dna.MustPack(ref[100:180])}
	sub := []byte(ref[300:380])
	sub[40] = flipBase(sub[40])
	mutated := Seq{Name: "mutated", Seq: dna.MustPack(string(sub))}

	iopt := DefaultIndexOptions(21)
	qopt := DefaultQueryOptions()
	qopt.CollectAlignments = true
	a, err := Build(2, iopt, []Seq{target})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	stream, err := NewSAMStream(&buf, a.Targets())
	if err != nil {
		t.Fatal(err)
	}
	for _, batch := range [][]Seq{{exact}, {mutated}} {
		res, err := a.Align(context.Background(), batch, qopt)
		if err != nil {
			t.Fatal(err)
		}
		if err := stream.WriteBatch(res, batch); err != nil {
			t.Fatal(err)
		}
	}
	if err := stream.Flush(); err != nil {
		t.Fatal(err)
	}

	out := buf.String()
	if n := strings.Count(out, "@SQ"); n != 1 {
		t.Fatalf("@SQ headers = %d, want 1 (shared across batches)", n)
	}
	nm := map[string]int{}
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		fields := strings.Split(line, "\t")
		if fields[1] != "0" && fields[1] != "16" {
			continue // only primary records carry the reads we assert on
		}
		for _, f := range fields[11:] {
			if v, ok := strings.CutPrefix(f, "NM:i:"); ok {
				got, err := strconv.Atoi(v)
				if err != nil {
					t.Fatalf("bad NM tag %q", f)
				}
				if prev, dup := nm[fields[0]]; !dup || got < prev {
					nm[fields[0]] = got
				}
			}
		}
	}
	if got, ok := nm["exact"]; !ok || got != 0 {
		t.Errorf("exact read NM = %d (found %v), want 0", got, ok)
	}
	if got, ok := nm["mutated"]; !ok || got != 1 {
		t.Errorf("mutated read NM = %d (found %v), want 1", got, ok)
	}
}

// WriteSAM's cigars must span the full read (soft clips added) so the
// output is valid for downstream tools.
func TestSAMCigarSpansRead(t *testing.T) {
	ds := apiWorkload(t)
	opt := DefaultOptions(31)
	opt.CollectAlignments = true
	res, err := AlignThreaded(4, opt, ds.Contigs, ds.Reads[:200])
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSAM(&buf, res, ds.Contigs, ds.Reads[:200]); err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if strings.HasPrefix(line, "@") {
			continue
		}
		fields := strings.Split(line, "\t")
		if fields[5] == "*" {
			continue
		}
		span := 0
		n := 0
		for i := 0; i < len(fields[5]); i++ {
			c := fields[5][i]
			if c >= '0' && c <= '9' {
				n = n*10 + int(c-'0')
				continue
			}
			if c == 'M' || c == 'I' || c == 'S' {
				span += n
			}
			n = 0
		}
		if span != len(fields[9]) {
			t.Fatalf("cigar %q spans %d, SEQ is %d bases: %s", fields[5], span, len(fields[9]), line)
		}
	}
}

// Gzipped FASTA and FASTQ load transparently through the file readers.
func TestReadGzippedInputs(t *testing.T) {
	ds := apiWorkload(t)
	dir := t.TempDir()

	gzWrite := func(name string, write func(w *gzip.Writer) error) string {
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		zw := gzip.NewWriter(f)
		if err := write(zw); err != nil {
			t.Fatal(err)
		}
		if err := zw.Close(); err != nil {
			t.Fatal(err)
		}
		f.Close()
		return path
	}

	faPath := gzWrite("contigs.fa.gz", func(w *gzip.Writer) error {
		return seqio.WriteFasta(w, ds.Contigs)
	})
	fqPath := gzWrite("reads.fq.gz", func(w *gzip.Writer) error {
		return seqio.WriteFastq(w, ds.Reads[:100])
	})

	targets, err := ReadFasta(faPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(targets) != len(ds.Contigs) || !targets[0].Seq.Equal(ds.Contigs[0].Seq) {
		t.Fatalf("gzipped FASTA read %d contigs, want %d matching", len(targets), len(ds.Contigs))
	}
	queries, err := ReadQueries(fqPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(queries) != 100 || !queries[0].Seq.Equal(ds.Reads[0].Seq) {
		t.Fatalf("gzipped FASTQ read %d reads, want 100 matching", len(queries))
	}

	// Gzipped SeqDB is rejected with a useful error, not misparsed.
	rawSdb := filepath.Join(dir, "reads.seqdb")
	sf, err := os.Create(rawSdb)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := seqio.WriteSeqDB(sf, ds.Reads[:10], 8); err != nil {
		t.Fatal(err)
	}
	sf.Close()
	sdbBytes, err := os.ReadFile(rawSdb)
	if err != nil {
		t.Fatal(err)
	}
	sdbPath := gzWrite("reads.seqdb.gz", func(w *gzip.Writer) error {
		_, err := w.Write(sdbBytes)
		return err
	})
	if _, err := ReadQueries(sdbPath); err == nil || !strings.Contains(err.Error(), "SeqDB") {
		t.Fatalf("gzipped SeqDB err = %v, want SeqDB-specific error", err)
	}
}

// flipBase substitutes a base deterministically for the NM test.
func flipBase(b byte) byte {
	switch b {
	case 'A':
		return 'C'
	case 'C':
		return 'G'
	case 'G':
		return 'T'
	default:
		return 'A'
	}
}
