package meraligner

import (
	"bytes"
	"strings"
	"testing"

	"github.com/lbl-repro/meraligner/internal/align"
	"github.com/lbl-repro/meraligner/internal/dna"
)

func TestParseCigarAcceptsWellFormed(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want string // round-trip via align.Cigar.String
	}{
		{"5M", "5M"},
		{"3M2I4D1M", "3M2I4D1M"},
		{"12M", "12M"},
		{"1M1I1D1M", "1M1I1D1M"},
	} {
		ops, ok := parseCigar(tc.in)
		if !ok {
			t.Errorf("parseCigar(%q): rejected, want accepted", tc.in)
			continue
		}
		if got := ops.String(); got != tc.want {
			t.Errorf("parseCigar(%q) round-trips to %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestParseCigarRejectsMalformed(t *testing.T) {
	for _, in := range []string{
		"",      // empty
		"M",     // op with no count
		"3",     // count with no op
		"3M2",   // trailing count
		"0M",    // zero-length op
		"3X",    // unsupported op (hard clips, skips, etc. never come from the engine)
		"3S5M",  // soft clips are added by the writer, never parsed back
		"-3M",   // not a digit
		"3M0I",  // zero-length op after a valid one
		"3MM",   // op with no count after a valid one
		"4H5M",  // hard clip
		"5M \t", // garbage tail
	} {
		if ops, ok := parseCigar(in); ok {
			t.Errorf("parseCigar(%q): accepted as %v, want rejected", in, ops)
		}
	}
}

// mustOps parses a known-good cigar for the editDistance tests.
func mustOps(t *testing.T, s string) align.Cigar {
	t.Helper()
	ops, ok := parseCigar(s)
	if !ok {
		t.Fatalf("parseCigar(%q) rejected a well-formed test cigar", s)
	}
	return ops
}

func TestEditDistance(t *testing.T) {
	tgt := dna.MustPack("ACGTACGTACGT")
	codes := func(s string) []byte { return dna.MustPack(s).Codes() }
	for _, tc := range []struct {
		name   string
		cigar  string
		q      string
		qStart int
		tStart int
		tEnd   int
		want   int
		ok     bool
	}{
		{"perfect match", "4M", "ACGT", 0, 0, 4, 0, true},
		{"one mismatch", "4M", "ACCT", 0, 0, 4, 1, true},
		{"all mismatch", "4M", "CAAC", 0, 0, 4, 4, true},
		{"offset windows", "4M", "GGTACG", 2, 3, 7, 0, true},
		{"insertion counts", "2M2I2M", "ACAAGT", 0, 0, 4, 2, true},
		{"deletion counts", "2M2D2M", "ACAC", 0, 0, 6, 2, true},
		{"mixed indel and mismatch", "2M1I1M", "ACTA", 0, 0, 3, 2, true},
		{"query overstepped by M", "6M", "ACGT", 0, 0, 6, 0, false},
		{"query overstepped by I", "4M2I", "ACGTA", 0, 0, 4, 0, false},
		{"target window overstepped by M", "6M", "ACGTAC", 0, 0, 4, 0, false},
		{"target window overstepped by D", "4M2D", "ACGT", 0, 0, 5, 0, false},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := editDistance(mustOps(t, tc.cigar), codes(tc.q), tc.qStart, tgt, tc.tStart, tc.tEnd)
			if ok != tc.ok {
				t.Fatalf("editDistance ok=%v, want %v", ok, tc.ok)
			}
			if ok && got != tc.want {
				t.Fatalf("editDistance=%d, want %d", got, tc.want)
			}
		})
	}
}

func TestEditDistanceRejectsUnknownOp(t *testing.T) {
	// Hard clips (and any other op) cannot be charged against either
	// sequence; the walker must bail out rather than guess.
	ops := align.Cigar{{Op: 'H', Len: 2}, {Op: 'M', Len: 2}}
	if _, ok := editDistance(ops, dna.MustPack("ACGT").Codes(), 0, dna.MustPack("ACGT"), 0, 4); ok {
		t.Fatal("editDistance accepted a cigar with a hard-clip op")
	}
}

// samBody renders a record set and strips the header lines.
func samBody(t *testing.T, render func(s *SAMStream) error, targets []Seq) []string {
	t.Helper()
	var buf bytes.Buffer
	s, err := NewSAMStream(&buf, targets)
	if err != nil {
		t.Fatal(err)
	}
	if err := render(s); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	var body []string
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line != "" && !strings.HasPrefix(line, "@") {
			body = append(body, line)
		}
	}
	return body
}

func TestSAMStreamUnmappedRecord(t *testing.T) {
	targets := []Seq{{Name: "t0", Seq: dna.MustPack("ACGTACGTACGT")}}
	queries := []Seq{{Name: "lonely", Seq: dna.MustPack("AACC"), Qual: []byte("IIII")}}
	res := &Results{TotalReads: 1} // no alignments at all
	lines := samBody(t, func(s *SAMStream) error { return s.WriteBatch(res, queries) }, targets)
	if len(lines) != 1 {
		t.Fatalf("got %d records, want 1 unmapped:\n%s", len(lines), strings.Join(lines, "\n"))
	}
	f := strings.Split(lines[0], "\t")
	if f[0] != "lonely" || f[1] != "4" || f[2] != "*" || f[3] != "0" || f[5] != "*" {
		t.Fatalf("unmapped record malformed: %q", lines[0])
	}
	if strings.Contains(lines[0], "AS:i:") || strings.Contains(lines[0], "NM:i:") {
		t.Fatalf("unmapped record carries score tags: %q", lines[0])
	}
	if f[9] != "AACC" || f[10] != "IIII" {
		t.Fatalf("unmapped record must keep seq/qual: %q", lines[0])
	}
}

func TestSAMStreamSoftClipsAndNM(t *testing.T) {
	//            0123456789
	tgt := dna.MustPack("AAACGTACGTTT")
	targets := []Seq{{Name: "t0", Seq: tgt}}
	// Query aligns bases [1,5) onto target [3,7) with one mismatch; the
	// unaligned head and tail must come back as soft clips.
	queries := []Seq{{Name: "clipme", Seq: dna.MustPack("GCGTTTT")}}
	res := &Results{
		TotalReads: 1,
		Alignments: []Alignment{{
			Query: 0, Target: 0, Score: 3,
			QStart: 1, QEnd: 5, TStart: 3, TEnd: 7,
			Cigar: "4M",
		}},
	}
	lines := samBody(t, func(s *SAMStream) error { return s.WriteBatch(res, queries) }, targets)
	if len(lines) != 1 {
		t.Fatalf("got %d records, want 1", len(lines))
	}
	f := strings.Split(lines[0], "\t")
	if f[5] != "1S4M2S" {
		t.Fatalf("cigar %q, want soft-clipped 1S4M2S", f[5])
	}
	if f[3] != "4" { // TStart 3 → 1-based 4
		t.Fatalf("pos %q, want 4", f[3])
	}
	// Query bases [1,5) are CGTT; target [3,7) is CGTA → one mismatch, and
	// the soft-clipped tails must not be charged to NM.
	if !strings.Contains(lines[0], "NM:i:1") {
		t.Fatalf("record %q lacks NM:i:1", lines[0])
	}
}

func TestSAMStreamEmptyCigarFallsBackToMatchRun(t *testing.T) {
	tgt := dna.MustPack("ACGTACGT")
	targets := []Seq{{Name: "t0", Seq: tgt}}
	queries := []Seq{{Name: "fast", Seq: dna.MustPack("ACGT")}}
	// Exact-path alignments carry no cigar; the writer synthesizes one.
	res := &Results{
		TotalReads: 1,
		Alignments: []Alignment{{
			Query: 0, Target: 0, Score: 4, Exact: true,
			QStart: 0, QEnd: 4, TStart: 0, TEnd: 4,
		}},
	}
	lines := samBody(t, func(s *SAMStream) error { return s.WriteBatch(res, queries) }, targets)
	f := strings.Split(lines[0], "\t")
	if f[5] != "4M" {
		t.Fatalf("cigar %q, want synthesized 4M", f[5])
	}
	if !strings.Contains(lines[0], "NM:i:0") {
		t.Fatalf("record %q lacks NM:i:0", lines[0])
	}
}

func TestWriteRangeMatchesWriteBatch(t *testing.T) {
	tgt := dna.MustPack("ACGTACGTACGTACGT")
	targets := []Seq{{Name: "t0", Seq: tgt}}
	queries := []Seq{
		{Name: "q0", Seq: dna.MustPack("ACGTA")},
		{Name: "q1", Seq: dna.MustPack("TTTTT")}, // unmapped
		{Name: "q2", Seq: dna.MustPack("CGTAC")},
		{Name: "q3", Seq: dna.MustPack("GTACG")},
	}
	res := &Results{
		TotalReads: len(queries),
		Alignments: []Alignment{
			{Query: 0, Target: 0, Score: 5, QStart: 0, QEnd: 5, TStart: 0, TEnd: 5, Cigar: "5M"},
			{Query: 2, Target: 0, Score: 5, QStart: 0, QEnd: 5, TStart: 1, TEnd: 6, Cigar: "5M"},
			{Query: 2, Target: 0, Score: 5, QStart: 0, QEnd: 5, TStart: 5, TEnd: 10, Cigar: "5M"},
			{Query: 3, Target: 0, Score: 5, QStart: 0, QEnd: 5, TStart: 2, TEnd: 7, Cigar: "5M"},
		},
	}
	full := samBody(t, func(s *SAMStream) error { return s.WriteBatch(res, queries) }, targets)
	var ranged []string
	for _, w := range [][2]int{{0, 1}, {1, 3}, {3, 4}} {
		ranged = append(ranged, samBody(t, func(s *SAMStream) error {
			return s.WriteRange(res, queries, w[0], w[1])
		}, targets)...)
	}
	if strings.Join(full, "\n") != strings.Join(ranged, "\n") {
		t.Fatalf("WriteRange windows diverge from WriteBatch:\nfull:\n%s\nranged:\n%s",
			strings.Join(full, "\n"), strings.Join(ranged, "\n"))
	}
	if _, err := NewSAMStream(&bytes.Buffer{}, targets); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	s, _ := NewSAMStream(&buf, targets)
	if err := s.WriteRange(res, queries, 2, 9); err == nil {
		t.Fatal("WriteRange accepted an out-of-range window")
	}
}
